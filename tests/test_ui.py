"""Tests for the management-interface rendering (Figure 2)."""

from __future__ import annotations

import pytest

from repro import (
    ClusterSimulator,
    ConstantUtility,
    GaussianEstimator,
    JobSpec,
    LinearUtility,
    PlannerJob,
    RushPlanner,
    RushScheduler,
)
from repro.ui import (
    render_cluster_text,
    render_status_html,
    render_status_text,
    status_rows,
)


@pytest.fixture
def plan():
    de = GaussianEstimator(prior_mean=10, prior_std=2)
    planner = RushPlanner(capacity=4, theta=0.9, delta=0.5)
    jobs = [
        PlannerJob("healthy", ConstantUtility(2.0), de.estimate(10)),
        PlannerJob("doomed", LinearUtility(budget=3, priority=1),
                   de.estimate(50), elapsed=100.0),
    ]
    return planner.plan(jobs)


class TestStatusRows:
    def test_one_row_per_job_in_order(self, plan):
        rows = status_rows(plan)
        assert [row[0] for row in rows] == ["healthy", "doomed"]

    def test_impossible_marked(self, plan):
        rows = {row[0]: row for row in status_rows(plan)}
        assert rows["doomed"][-1] == "IMPOSSIBLE"
        assert rows["healthy"][-1] == "ok"


class TestTextRendering:
    def test_contains_header_and_jobs(self, plan):
        text = render_status_text(plan)
        assert "theta=0.9" in text
        assert "healthy" in text and "doomed" in text

    def test_red_row_marker_and_footer(self, plan):
        text = render_status_text(plan)
        assert "!!" in text
        assert "resubmit" in text
        assert "doomed" in text.splitlines()[-1]

    def test_no_footer_when_all_ok(self):
        de = GaussianEstimator(prior_mean=10, prior_std=2)
        planner = RushPlanner(capacity=4)
        plan = planner.plan([PlannerJob("ok", ConstantUtility(1.0),
                                        de.estimate(5))])
        text = render_status_text(plan)
        assert "resubmit" not in text


class TestHtmlRendering:
    def test_is_self_contained_html(self, plan):
        page = render_status_html(plan)
        assert page.startswith("<!DOCTYPE html>")
        assert page.count("<tr") == 3  # header + 2 jobs

    def test_impossible_row_is_red(self, plan):
        page = render_status_html(plan)
        assert "background:#c0392b" in page

    def test_escapes_job_ids(self):
        de = GaussianEstimator(prior_mean=10, prior_std=2)
        planner = RushPlanner(capacity=4)
        plan = planner.plan([PlannerJob("<script>", ConstantUtility(1.0),
                                        de.estimate(5))])
        page = render_status_html(plan)
        assert "<script>" not in page
        assert "&lt;script&gt;" in page


class TestProfileRendering:
    def test_empty_profile(self):
        from repro import render_profile_text
        text = render_profile_text({"plans_computed": 0})
        assert "no plans computed" in text

    def test_renders_all_counter_groups(self):
        from repro import render_profile_text
        scheduler = RushScheduler()
        sim = ClusterSimulator(2, scheduler)
        sim.submit(JobSpec(job_id="j", arrival=0, task_durations=(3, 3),
                           utility=ConstantUtility(1.0), prior_runtime=3.0))
        sim.run()
        text = render_profile_text(scheduler.profile())
        assert "planner profile:" in text
        assert "onion peeling" in text
        assert "estimates:" in text
        assert "WCDE memo:" in text
        assert "feasibility check" in text


class TestClusterRendering:
    def test_live_snapshot(self):
        scheduler = RushScheduler()
        sim = ClusterSimulator(2, scheduler)
        sim.submit(JobSpec(job_id="j", arrival=0, task_durations=(3, 3),
                           utility=ConstantUtility(1.0), prior_runtime=3.0))
        sim.step()
        text = render_cluster_text(sim, scheduler.last_plan)
        assert "slot 1" in text
        assert "2/2 containers busy" in text
        assert "j" in text

    def test_empty_cluster(self):
        sim = ClusterSimulator(2, RushScheduler())
        text = render_cluster_text(sim)
        assert "0/2 containers busy" in text
