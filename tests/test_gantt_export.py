"""Tests for the Gantt renderer and simulation-result export."""

from __future__ import annotations

import csv
import json
import math

import pytest

from repro import FifoScheduler, run_simulation
from repro.analysis import job_legend, render_gantt
from repro.core.mapping import ContainerPlan, MappingJob, map_time_slots
from repro.errors import ConfigurationError
from repro.workload import WorkloadConfig, generate_workload


@pytest.fixture
def plan() -> ContainerPlan:
    return map_time_slots([MappingJob("alpha", 20, 5, 10),
                           MappingJob("beta", 12, 3, 16)], 3)


class TestGantt:
    def test_legend_is_stable(self, plan):
        legend = job_legend(plan)
        assert legend == {"alpha": "A", "beta": "B"}

    def test_render_shape(self, plan):
        text = render_gantt(plan, width=48)
        lines = text.splitlines()
        assert len(lines) == 1 + 3 + 2  # header + 3 queues + blank + legend
        for line in lines[1:4]:
            assert line.endswith("|")
            assert len(line) == len(lines[1])

    def test_render_contents(self, plan):
        text = render_gantt(plan, width=48)
        assert "A" in text and "B" in text
        assert "legend: A=alpha  B=beta" in text
        # queue 2 is never used by Algorithm 4's front-filling
        q2 = [line for line in text.splitlines() if line.startswith("q02")][0]
        assert set(q2[5:-1]) == {"."}

    def test_empty_plan(self):
        assert render_gantt(map_time_slots([], 2)) == "(empty plan)"

    def test_width_validation(self, plan):
        with pytest.raises(ConfigurationError):
            render_gantt(plan, width=5)

    def test_many_jobs_cycle_symbols(self):
        jobs = [MappingJob(f"job{i}", 2, 1, 100) for i in range(70)]
        plan = map_time_slots(jobs, 1)
        legend = job_legend(plan)
        assert len(legend) == 70
        assert len(set(legend.values())) > 50  # symbols mostly distinct


class TestExport:
    @pytest.fixture
    def result(self):
        specs = generate_workload(
            WorkloadConfig(n_jobs=4, capacity=4, mean_interarrival=50,
                           time_scale=0.25, size_gb_range=(0.5, 1.0)),
            seed=1)
        return run_simulation(specs, 4, FifoScheduler())

    def test_to_dict_roundtrips_counts(self, result):
        data = result.to_dict()
        assert data["scheduler"] == "FIFO"
        assert len(data["records"]) == 4
        assert data["busy_container_slots"] == result.busy_container_slots

    def test_save_json(self, result, tmp_path):
        path = tmp_path / "run.json"
        result.save_json(path)
        data = json.loads(path.read_text())
        assert data["capacity"] == 4
        assert all("utility_value" in r for r in data["records"])

    def test_json_nan_becomes_null(self, tmp_path):
        from repro import ConstantUtility, JobSpec

        spec = JobSpec(job_id="j", arrival=0, task_durations=(1,),
                       utility=ConstantUtility(1.0))
        result = run_simulation([spec], 1, FifoScheduler())
        path = tmp_path / "run.json"
        result.save_json(path)
        data = json.loads(path.read_text())  # must parse as strict JSON
        assert data["records"][0]["latency"] is None

    def test_save_csv(self, result, tmp_path):
        path = tmp_path / "run.csv"
        result.save_csv(path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert {"job_id", "runtime", "latency", "utility_value"} <= \
            set(rows[0])
