"""Unit tests for trace-history-fitted empirical estimators.

:func:`split_warmup` and :class:`TraceFittedEstimators` are the bridge
between ingested traces and the RUSH planner's DE units; everything here
must be deterministic so scenario digests stay bit-identical.
"""

from __future__ import annotations

import pytest

from repro.errors import EstimationError
from repro.estimation.empirical import (EmpiricalEstimator,
                                        TraceFittedEstimators, split_warmup)
from repro.cluster.job import JobSpec
from repro.utility.constant import ConstantUtility


def make_spec(job_id, arrival, durations, template):
    return JobSpec(job_id=job_id, arrival=arrival,
                   task_durations=tuple(durations),
                   utility=ConstantUtility(priority=1.0),
                   template=template)


@pytest.fixture
def workload():
    return [make_spec(f"job-{k:02d}", k, [2 + k % 3, 4], "grep" if k % 2 else "sort")
            for k in range(10)]


class TestSplitWarmup:
    def test_splits_by_arrival_order(self, workload):
        warm, hold = split_warmup(list(reversed(workload)), 0.4)
        assert [s.job_id for s in warm] == [s.job_id for s in workload[:4]]
        assert [s.job_id for s in hold] == [s.job_id for s in workload[4:]]

    def test_every_side_gets_at_least_one_job(self, workload):
        warm, hold = split_warmup(workload[:2], 0.01)
        assert len(warm) == 1 and len(hold) == 1
        warm, hold = split_warmup(workload[:2], 0.99)
        assert len(warm) == 1 and len(hold) == 1

    def test_single_job_goes_to_warmup(self, workload):
        warm, hold = split_warmup(workload[:1])
        assert len(warm) == 1 and hold == []

    def test_fraction_bounds_validated(self, workload):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(EstimationError):
                split_warmup(workload, bad)

    def test_ties_broken_by_job_id(self):
        specs = [make_spec("b", 5, [1], ""), make_spec("a", 5, [1], "")]
        warm, hold = split_warmup(specs, 0.5)
        assert warm[0].job_id == "a"


class TestTraceFittedEstimators:
    def test_fit_pools_durations_per_template(self, workload):
        fit = TraceFittedEstimators.fit(workload)
        assert fit.classes == ["grep", "sort"]
        summary = fit.summary()
        assert summary["sort"]["samples"] == 10.0  # 5 jobs x 2 tasks
        assert summary["grep"]["samples"] == 10.0

    def test_untemplated_jobs_pool_under_sentinel_label(self):
        fit = TraceFittedEstimators.fit([make_spec("x", 0, [3, 3], "")])
        assert fit.classes == ["untemplated"]

    def test_thinning_is_deterministic_and_capped(self):
        samples = {"big": list(range(1, 1001))}
        one = TraceFittedEstimators(samples, max_seed_samples=16)
        two = TraceFittedEstimators(samples, max_seed_samples=16)
        assert one.seed_samples("big") == two.seed_samples("big")
        assert len(one.seed_samples("big")) == 16
        pool = one.seed_samples("big")
        assert pool == tuple(sorted(pool))  # evenly spaced ranks, sorted
        assert pool[0] == 1.0 and pool[-1] == 1000.0

    def test_unseen_class_falls_back_to_cross_class_pool(self, workload):
        fit = TraceFittedEstimators.fit(workload)
        fallback = fit.seed_samples("never-seen")
        assert fallback
        assert set(fallback) <= set(fit.seed_samples("grep"))\
            | set(fit.seed_samples("sort"))

    def test_estimator_for_seeds_class_history(self, workload):
        fit = TraceFittedEstimators.fit(workload)
        spec = make_spec("new", 99, [5], "sort")
        estimator = fit.estimator_for(spec)
        assert isinstance(estimator, EmpiricalEstimator)
        assert estimator.sample_count == len(fit.seed_samples("sort"))
        # Online observation accumulates on top of the trace history.
        estimator.observe(7.0)
        assert estimator.sample_count == len(fit.seed_samples("sort")) + 1

    def test_estimator_for_uses_spec_prior_when_present(self):
        fit = TraceFittedEstimators({}, default_prior=10.0)
        spec = JobSpec(job_id="p", arrival=0, task_durations=(1,),
                       utility=ConstantUtility(priority=1.0),
                       template="nowhere", prior_runtime=42.0)
        estimate = fit.estimator_for(spec).estimate(pending_tasks=1)
        assert estimate.container_runtime == pytest.approx(42.0)

    def test_empty_fit_falls_back_to_default_prior(self):
        fit = TraceFittedEstimators({}, default_prior=10.0)
        spec = make_spec("cold", 0, [1], "anything")
        estimate = fit.estimator_for(spec).estimate(pending_tasks=2)
        assert estimate.container_runtime == pytest.approx(10.0)

    def test_nonpositive_samples_are_dropped(self):
        fit = TraceFittedEstimators({"odd": [0.0, -3.0, 4.0]})
        assert fit.seed_samples("odd") == (4.0,)

    def test_config_validation(self):
        with pytest.raises(EstimationError):
            TraceFittedEstimators({}, max_seed_samples=0)
        with pytest.raises(EstimationError):
            TraceFittedEstimators({}, default_prior=0.0)
