"""The clock/event-source boundary: protocols, bit-identity, carve-out.

Three contracts pinned here:

* the :class:`~repro.core.clock.Clock` / EventSource plumbing itself
  (slot counting, due-slot ordering, lenient cancel delivery);
* **bit-identity**: a simulator driven externally — explicit
  :class:`SimulatedClock` plus :class:`QueueEventSource` delivering
  submissions at their arrival slots — produces byte-identical results
  and decision streams to the classic upfront-submission ``run()`` loop
  (the tentpole refactor must be unobservable from inside);
* the **wall-clock carve-out**: ``repro.service.clock`` is the only
  sanctioned wall-clock reader.  The same source forced into the
  deterministic ``core`` classification fires RL002, proving the
  exemption comes from the package boundary, not a weakened rule.
"""

from __future__ import annotations

import asyncio
import math
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.simulator import ClusterSimulator, run_simulation
from repro.cluster.job import JobSpec
from repro.core.clock import (CancelEvent, QueueEventSource, SimulatedClock,
                              SubmitEvent)
from repro.lint.config import DETERMINISTIC_PACKAGES, LintConfig
from repro.lint.framework import lint_file
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.rush import RushScheduler
from repro.service.clock import RealTimeClock
from repro.utility.config import utility_from_config

SERVICE_CLOCK_PATH = str(
    Path(__file__).parent.parent / "src" / "repro" / "service" / "clock.py")


# ---------------------------------------------------------------------------
# Clock / event-source primitives
# ---------------------------------------------------------------------------


def test_simulated_clock_counts_slots():
    clock = SimulatedClock()
    assert clock.slot == 0
    assert clock.advance() == 1
    assert clock.slot == 1
    assert SimulatedClock(start=7).slot == 7


def test_queue_event_source_orders_by_due_then_push_order():
    source = QueueEventSource()
    source.push(CancelEvent("late"), due=5)
    source.push(CancelEvent("a"), due=2)
    source.push(CancelEvent("b"), due=2)
    source.push(CancelEvent("now"))  # due < 0: next poll
    assert [e.job_id for e in source.poll(0)] == ["now"]
    assert source.poll(1) == []
    assert [e.job_id for e in source.poll(3)] == ["a", "b"]
    assert len(source) == 1
    assert [e.job_id for e in source.poll(10)] == ["late"]
    assert source.poll(10) == []


def test_decision_recording_is_off_by_default():
    spec = _spec("j0", 0, (2, 2), 10.0)
    sim = ClusterSimulator(2, FifoScheduler())
    sim.submit(spec)
    sim.run()
    assert sim.decisions == []


# ---------------------------------------------------------------------------
# Bit-identity: external driving == classic batch loop
# ---------------------------------------------------------------------------


def _spec(job_id: str, arrival: int, durations, budget: float) -> JobSpec:
    return JobSpec(
        job_id=job_id, arrival=arrival, task_durations=tuple(durations),
        utility=utility_from_config(
            {"class": "sigmoid", "budget": budget, "priority": 1.0}),
        budget=budget)


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    specs = []
    for k in range(n):
        durations = draw(st.lists(st.integers(1, 5), min_size=1, max_size=4))
        arrival = draw(st.integers(0, 12))
        budget = float(draw(st.integers(2, 30)))
        specs.append(_spec(f"j{k}", arrival, durations, budget))
    return specs


def _drive_externally(specs, capacity, scheduler, seed):
    """Deliver every submission through the event source, step by hand."""
    sim = ClusterSimulator(capacity, scheduler, seed=seed,
                           clock=SimulatedClock(), events=QueueEventSource(),
                           record_decisions=True)
    for spec in specs:
        sim._events.push(SubmitEvent(spec), due=spec.arrival)
    guard = 0
    while (len(sim._events) or sim._pending_arrivals
           or sim.active_jobs) and guard < 5000:
        sim.step()
        guard += 1
    assert guard < 5000, "externally driven run failed to converge"
    return sim


def _comparable(result) -> dict:
    data = result.to_dict()
    # planner_seconds is wall-clock solver timing — excluded from the
    # bit-identity contract by design (RL002 allows monotonic budgets).
    data.pop("planner_seconds", None)
    return data


@settings(max_examples=25, deadline=None)
@given(specs=workloads(), seed=st.integers(0, 3),
       scheduler_cls=st.sampled_from([FifoScheduler, EdfScheduler]))
def test_external_clock_driving_is_bit_identical(specs, seed, scheduler_cls):
    batch = run_simulation(specs, 3, scheduler_cls(), seed=seed)
    driven = _drive_externally(specs, 3, scheduler_cls(), seed=seed)
    assert _comparable(driven._result()) == _comparable(batch)


def test_external_driving_matches_rush_decisions():
    """Same property under the full planning stack, decision stream pinned."""
    specs = [_spec("a", 0, (3, 2, 2), 12.0), _spec("b", 1, (4,), 8.0),
             _spec("c", 2, (2, 2), 6.0), _spec("d", 6, (1, 5), 20.0)]
    reference = ClusterSimulator(2, RushScheduler(), seed=1,
                                 record_decisions=True)
    for spec in specs:
        reference.submit(spec)
    ref_result = reference.run()
    driven = _drive_externally(specs, 2, RushScheduler(), seed=1)
    assert driven.decisions == reference.decisions
    assert _comparable(driven._result()) == _comparable(ref_result)


def test_cancel_event_is_lenient_but_direct_cancel_is_strict():
    spec = _spec("gone", 0, (2,), 5.0)
    sim = ClusterSimulator(1, FifoScheduler(), events=QueueEventSource())
    sim.submit(spec)
    sim._events.push(CancelEvent("never-existed"))  # lenient: no raise
    sim.step()
    assert sim.has_job("gone") and not sim.cancelled_jobs
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        sim.cancel_job("never-existed")
    assert sim.cancel_job("gone") is True
    assert [j.job_id for j in sim.cancelled_jobs] == ["gone"]
    # cancelled jobs never appear in the run's records
    assert [r.job_id for r in sim._result().records] == []


# ---------------------------------------------------------------------------
# RealTimeClock: protocol conformance and pacing
# ---------------------------------------------------------------------------


def test_real_time_clock_advance_never_sleeps():
    clock = RealTimeClock(slot_seconds=60.0)
    started = time.monotonic()
    for _ in range(1000):
        clock.advance()
    assert clock.slot == 1000
    assert time.monotonic() - started < 1.0  # no pacing inside advance()


def test_real_time_clock_paces_slot_boundaries():
    clock = RealTimeClock(slot_seconds=0.02)

    async def run_three_slots():
        start = time.monotonic()
        for _ in range(3):
            await clock.wait_for_next_slot()
            clock.advance()
        return time.monotonic() - start

    elapsed = asyncio.run(run_three_slots())
    assert elapsed >= 0.05  # three 20ms boundaries, minus scheduling slack
    assert clock.slot == 3


def test_real_time_clock_rebase_prevents_catchup_spin():
    clock = RealTimeClock(slot_seconds=10.0)
    for _ in range(500):  # instant replay fast-forward
        clock.advance()
    clock.rebase()

    async def next_boundary_is_in_the_future():
        # After rebase the next boundary is ~10s away; the wait must not
        # return immediately, so poll it with a tiny timeout instead.
        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(clock.wait_for_next_slot(), timeout=0.01)

    asyncio.run(next_boundary_is_in_the_future())
    assert math.isclose(clock.uptime_seconds(), 0.0, abs_tol=1.0)


def test_real_time_clock_yields_even_when_behind_schedule():
    """A loop running behind must still cooperate with the event loop.

    When the next boundary is already in the past, ``wait_for_next_slot``
    has nothing to sleep for — but it must still award the event loop a
    turn, or a catch-up ticker would starve every other handler (the
    daemon's HTTP requests run on the same loop).
    """
    clock = RealTimeClock(slot_seconds=0.001)

    async def catch_up_loop():
        await asyncio.sleep(0.02)  # fall many boundaries behind
        witness = asyncio.get_running_loop().create_task(asyncio.sleep(0))
        for _ in range(5):
            await clock.wait_for_next_slot()
            clock.advance()
        ran_during_loop = witness.done()
        await witness
        return ran_during_loop

    assert asyncio.run(catch_up_loop())


def test_real_time_clock_rejects_nonpositive_slot():
    with pytest.raises(ValueError):
        RealTimeClock(slot_seconds=0.0)


# ---------------------------------------------------------------------------
# The RL002 carve-out: service is exempt, core is not — and the
# exemption is positional, not a hole in the rule.
# ---------------------------------------------------------------------------


def test_service_is_not_a_deterministic_package():
    assert "service" not in DETERMINISTIC_PACKAGES
    assert {"core", "cluster"} <= DETERMINISTIC_PACKAGES


def test_service_clock_is_exempt_in_its_own_package():
    findings = lint_file(SERVICE_CLOCK_PATH, config=LintConfig())
    assert [f for f in findings if f.rule_id == "RL002"] == []


def test_service_clock_source_fires_rl002_when_forced_into_core():
    """The same file under the core classification is a violation.

    This pins that ``repro.service`` stays the *only* sanctioned
    wall-clock reader: moving this code into a deterministic package
    (or widening the carve-out) turns the suite red.
    """
    findings = lint_file(SERVICE_CLOCK_PATH,
                         config=LintConfig(package_override="core"))
    wall = [f for f in findings if f.rule_id == "RL002"]
    assert len(wall) >= 2  # started_at stamp + wall_time()
    assert all("wall clock" in f.message for f in wall)


def test_core_clock_module_is_wall_clock_free():
    core_clock = str(Path(__file__).parent.parent
                     / "src" / "repro" / "core" / "clock.py")
    findings = lint_file(core_clock, config=LintConfig())
    assert [f for f in findings if f.rule_id == "RL002"] == []
    # and it classifies as deterministic in place, so RL002 was applied
    findings_forced = lint_file(core_clock,
                                config=LintConfig(package_override="core"))
    assert [f for f in findings_forced if f.rule_id == "RL002"] == []
