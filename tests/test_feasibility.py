"""Tests for the public staircase feasibility helpers (Theorem 2)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.core.feasibility import (
    first_violation,
    minimum_capacity,
    staircase_feasible,
)
from repro.core.tas_lp import lp_feasible


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            staircase_feasible([(1, 1)], 0)

    def test_negative_demand(self):
        with pytest.raises(ConfigurationError):
            staircase_feasible([(1, -1)], 1)

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            staircase_feasible([(float("nan"), 1)], 1)


class TestStaircase:
    def test_empty_is_feasible(self):
        assert staircase_feasible([], 1)

    def test_simple_fit(self):
        assert staircase_feasible([(5, 10)], 2)
        assert not staircase_feasible([(4, 10)], 2)

    def test_cumulative_constraint(self):
        # individually fine, cumulatively not: 4+4 units by slot 3 on C=2
        assert not staircase_feasible([(2, 4), (3, 4)], 2)
        assert staircase_feasible([(2, 4), (4, 4)], 2)

    def test_zero_demand_ignores_deadline(self):
        assert staircase_feasible([(0, 0), (-5, 0)], 1)

    def test_first_violation_index(self):
        assert first_violation([(2, 4), (3, 4)], 2) == 1
        assert first_violation([(1, 4), (3, 4)], 2) == 0
        assert first_violation([(10, 4), (20, 4)], 2) is None


class TestMinimumCapacity:
    def test_single_job(self):
        assert minimum_capacity([(5, 10)]) == pytest.approx(2.0)

    def test_staircase_maximum(self):
        # by 2: 4 units -> 2/slot; by 4: 8 units -> 2/slot; by 5: 18 -> 3.6
        assert minimum_capacity([(2, 4), (4, 4), (5, 10)]) == pytest.approx(3.6)

    def test_feasible_at_minimum(self):
        pairs = [(2, 4), (4, 4), (5, 10)]
        cap = minimum_capacity(pairs)
        assert staircase_feasible(pairs, cap + 1e-9)
        assert not staircase_feasible(pairs, cap * 0.99)

    def test_impossible_deadline(self):
        with pytest.raises(ConfigurationError):
            minimum_capacity([(0, 5)])

    def test_empty(self):
        assert minimum_capacity([]) == 0.0


class TestTheorem2Equivalence:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=4),
           st.lists(st.tuples(st.integers(min_value=1, max_value=12),
                              st.floats(min_value=0.0, max_value=25.0)),
                    min_size=1, max_size=5))
    def test_matches_lp(self, capacity, pairs):
        """The staircase test and the LP relaxation agree (Theorem 2)."""
        deadlines = [d for d, _ in pairs]
        demands = [eta for _, eta in pairs]
        assert staircase_feasible(pairs, capacity) == lp_feasible(
            deadlines, demands, capacity, horizon=15)
