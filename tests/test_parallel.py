"""The process-pool planner and the sqlite WCDE store (ISSUE 6).

The headline contract: :class:`~repro.core.parallel.ParallelPlanner`
with 1, 2 and 4 workers produces *byte-identical*
``SchedulePlan.to_dict()`` output to the serial
:class:`~repro.core.planner.IncrementalPlanner` — the pool only moves
WCDE solves across processes, it never changes them (batch-composition
invariance is pinned in ``tests/test_wcde_batch.py``).  The sqlite
store must round-trip a :class:`~repro.core.wcde.WcdeResult`
losslessly, including the lazily derived ``worst_pmf``/``worst_kl``.
"""

from __future__ import annotations

import json
import math

import pytest

from repro import (
    IncrementalPlanner,
    LinearUtility,
    ParallelPlanner,
    PlannerJob,
    RushPlanner,
    SqliteWcdeStore,
)
from repro.core.wcde import solve_wcde
from repro.errors import ConfigurationError, SolverBudgetError
from repro.estimation import DemandEstimate, Pmf


def make_jobs(n: int, *, mean_base: float = 30.0) -> list:
    return [
        PlannerJob(f"j{i:03d}", LinearUtility(300.0, 1.0 + (i % 5) * 0.3),
                   DemandEstimate(
                       Pmf.from_gaussian(mean_base + 3.1 * i, 4 + (i % 7),
                                         tau_max=int(mean_base + 3.1 * i
                                                     + 40)),
                       bin_width=1.0, container_runtime=4.0 + (i % 3),
                       sample_count=5),
                   elapsed=float(i % 11),
                   extra_demand=float(i % 4))
        for i in range(n)
    ]


def plan_bytes(plan) -> bytes:
    return json.dumps(plan.to_dict(), sort_keys=True).encode()


class TestParallelDeterminism:
    def test_worker_counts_are_byte_identical_to_serial(self):
        jobs = make_jobs(48)
        serial = IncrementalPlanner(RushPlanner(24), warm_start=False)
        reference = plan_bytes(serial.plan(jobs))
        for workers in (1, 2, 4):
            with ParallelPlanner(RushPlanner(24), workers=workers,
                                 warm_start=False) as parallel:
                assert plan_bytes(parallel.plan(jobs)) == reference, workers

    def test_second_round_presolves_from_memo(self):
        jobs = make_jobs(12)
        with ParallelPlanner(RushPlanner(24), workers=2,
                             warm_start=False) as parallel:
            first = plan_bytes(parallel.plan(jobs))
            rows_after_first = parallel.pool_rows
            second = plan_bytes(parallel.plan(jobs))
            assert first == second
            # Clean estimates never re-enter the pool.
            assert parallel.pool_rows == rows_after_first
            assert parallel.presolve_hits == 12

    def test_store_shares_solves_across_planners(self, tmp_path):
        jobs = make_jobs(20)
        path = str(tmp_path / "wcde.sqlite")
        serial = IncrementalPlanner(RushPlanner(24), warm_start=False)
        reference = plan_bytes(serial.plan(jobs))
        with SqliteWcdeStore(path) as store:
            with ParallelPlanner(RushPlanner(24), workers=2,
                                 warm_start=False, store=store) as first:
                assert plan_bytes(first.plan(jobs)) == reference
                assert first.pool_rows == 20 and first.store_hits == 0
            assert len(store) == 20
        # A fresh planner (a "restart") answers everything from disk.
        with SqliteWcdeStore(path) as store:
            with ParallelPlanner(RushPlanner(24), workers=2,
                                 warm_start=False, store=store) as second:
                assert plan_bytes(second.plan(jobs)) == reference
                assert second.pool_rows == 0 and second.store_hits == 20

    def test_forget_and_reset_mirror_incremental(self):
        jobs = make_jobs(6)
        with ParallelPlanner(RushPlanner(24), workers=1,
                             warm_start=False) as parallel:
            parallel.plan(jobs)
            parallel.forget(jobs[0].job_id)
            assert parallel._incremental.pending_jobs(jobs) == [jobs[0]]
            parallel.reset()
            assert parallel._incremental.pending_jobs(jobs) == jobs


class TestSqliteRoundTrip:
    def test_wcde_result_is_lossless(self, tmp_path):
        """Stored integers fully determine the rehydrated result."""
        reference = Pmf.from_gaussian(50, 9, tau_max=140)
        theta, delta = 0.9, 0.7
        fresh = solve_wcde(reference, theta, delta)
        with SqliteWcdeStore(str(tmp_path / "w.sqlite")) as store:
            assert store.load(reference, theta, delta) is None
            store.save(reference, theta, delta, fresh)
            loaded = store.load(reference, theta, delta)
        assert loaded is not None
        assert loaded.eta_bin == fresh.eta_bin
        assert loaded.reference_quantile == fresh.reference_quantile
        assert loaded.iterations == fresh.iterations
        # The lazy derivations rebuild bit-identically.
        assert loaded.worst_kl == fresh.worst_kl
        assert (loaded.worst_pmf.probs == fresh.worst_pmf.probs).all()

    def test_keys_are_content_addressed(self, tmp_path):
        reference = Pmf.from_gaussian(50, 9, tau_max=140)
        result = solve_wcde(reference, 0.9, 0.7, need_worst_pmf=False)
        with SqliteWcdeStore(str(tmp_path / "w.sqlite")) as store:
            store.save(reference, 0.9, 0.7, result)
            # Same content under a distinct object still hits.
            clone = Pmf(reference.probs)
            assert store.load(clone, 0.9, 0.7) is not None
            # Different theta/delta are distinct rows.
            assert store.load(reference, 0.8, 0.7) is None
            assert store.load(reference, 0.9, 0.5) is None

    def test_memory_store_is_private(self):
        reference = Pmf.from_gaussian(30, 5, tau_max=80)
        result = solve_wcde(reference, 0.9, 0.7, need_worst_pmf=False)
        a, b = SqliteWcdeStore(), SqliteWcdeStore()
        a.save(reference, 0.9, 0.7, result)
        assert len(a) == 1 and len(b) == 0
        a.close(), b.close()


class TestValidationAndBudget:
    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ParallelPlanner(RushPlanner(24), workers=0)

    def test_requires_a_wcde_cache(self):
        with pytest.raises(ConfigurationError):
            ParallelPlanner(RushPlanner(24, wcde_cache_size=0), workers=2)

    def test_bad_time_budget_rejected(self):
        with ParallelPlanner(RushPlanner(24), workers=1) as parallel:
            with pytest.raises(ConfigurationError):
                parallel.plan(make_jobs(2), time_budget=0.0)

    def test_tiny_budget_raises_solver_budget_error(self):
        with ParallelPlanner(RushPlanner(24), workers=1) as parallel:
            with pytest.raises(SolverBudgetError):
                parallel.plan(make_jobs(40), time_budget=1e-9)

    def test_close_is_idempotent(self):
        parallel = ParallelPlanner(RushPlanner(24), workers=1)
        parallel.plan(make_jobs(3))
        parallel.close()
        parallel.close()


class TestCachePeekInstall:
    def test_peek_does_not_touch_counters(self):
        planner = RushPlanner(24)
        cache = planner.wcde_cache
        pmf = Pmf.from_gaussian(40, 8, tau_max=110)
        assert cache.peek(pmf, 0.9, 0.7) is None
        cache.solve(pmf, 0.9, 0.7)
        hits, misses = cache.hits, cache.misses
        assert cache.peek(pmf, 0.9, 0.7) is not None
        assert (cache.hits, cache.misses) == (hits, misses)

    def test_install_seeds_a_future_hit(self):
        planner = RushPlanner(24)
        cache = planner.wcde_cache
        pmf = Pmf.from_gaussian(40, 8, tau_max=110)
        result = solve_wcde(pmf, 0.9, 0.7, need_worst_pmf=False)
        cache.install(pmf, 0.9, 0.7, result)
        assert (cache.hits, cache.misses) == (0, 0)
        assert cache.solve(pmf, 0.9, 0.7) is result
        assert (cache.hits, cache.misses) == (1, 0)

    def test_install_respects_the_lru_bound(self):
        from repro.core.wcde import WcdeCache

        cache = WcdeCache(maxsize=2)
        for mean in (20, 30, 40):
            pmf = Pmf.from_gaussian(mean, 4, tau_max=90)
            cache.install(pmf, 0.9, 0.7,
                          solve_wcde(pmf, 0.9, 0.7, need_worst_pmf=False))
        assert len(cache) == 2
