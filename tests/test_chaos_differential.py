"""Differential chaos tests: policies compared under identical fault specs.

Every policy is replayed against the *same* fault plan (same spec, same
seed) over the same workload, as ``rush chaos`` does — the comparisons
are deterministic, so these pin down both the sweep plumbing and the
relative behaviour of the schedulers under faults.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.chaos import chaos_sweep
from repro.cluster import JobSpec, run_simulation
from repro.errors import ConfigurationError
from repro.faults import (ContainerCrashInjector, FaultPlan,
                          SpecFailureInjector, default_chaos_plan)
from repro.schedulers import (EdfScheduler, FifoScheduler, RrhScheduler,
                              RushScheduler)
from repro.utility import ConstantUtility, LinearUtility, StepUtility

# Differential fault sweeps simulate every policy at every intensity;
# the fast CI lane deselects them (-m "not slow"), the full lane runs them.
pytestmark = pytest.mark.slow

POLICIES = {
    "rush": RushScheduler,
    "edf": EdfScheduler,
    "fifo": FifoScheduler,
    "rrh": RrhScheduler,
}


def spec(job_id, durations, arrival=0, failure_prob=0.0, budget=100.0):
    return JobSpec(job_id=job_id, arrival=arrival,
                   task_durations=tuple(durations),
                   utility=LinearUtility(budget, 1.0),
                   budget=budget, failure_prob=failure_prob)


def workload():
    return [spec(f"j{k}", (3, 3), arrival=2 * k, failure_prob=0.2,
                 budget=30.0 + 5.0 * k)
            for k in range(4)]


def mixed_workload():
    """Two long insensitive jobs plus one time-critical job, all at slot 0.

    A completion-time-blind policy (FIFO) gives the background jobs both
    containers and the critical job misses its step budget; a
    deadline-aware one runs the critical job first.
    """
    specs = [JobSpec(job_id=f"bg{k}", arrival=0, task_durations=(10,),
                     utility=ConstantUtility(1.0), budget=500.0,
                     failure_prob=0.1, sensitivity="insensitive")
             for k in range(2)]
    specs.append(JobSpec(job_id="zcrit", arrival=0, task_durations=(4, 4),
                         utility=StepUtility(16.0, 10.0), budget=16.0,
                         failure_prob=0.1, sensitivity="critical"))
    return specs


FAULTS = {"seed": 11,
          "injectors": [{"kind": "spec_failure"},
                        {"kind": "container_crash", "rate": 0.02,
                         "revoke_slots": 2},
                        {"kind": "straggler", "rate": 0.03},
                        {"kind": "job_kill", "rate": 0.01}]}


def run_policy(name, fault_spec=FAULTS, seed=0, max_slots=4000):
    return run_simulation(workload(), 2, POLICIES[name](), seed=seed,
                          faults=FaultPlan.from_spec(fault_spec),
                          max_slots=max_slots)


class TestDifferentialUnderIdenticalFaults:
    def test_all_policies_survive_the_same_fault_plan(self):
        for name in POLICIES:
            result = run_policy(name)
            assert result.completed_count == 4, name
            assert not result.timed_out, name
            assert result.fault_count() > 0, name

    def test_each_policy_is_deterministic_under_faults(self):
        for name in POLICIES:
            a, b = run_policy(name).to_dict(), run_policy(name).to_dict()
            a.pop("planner_seconds"), b.pop("planner_seconds")
            assert a == b, name

    def test_policies_diverge_but_share_the_fault_spec(self):
        # Same plan spec, different trajectories: the injected streams
        # are policy-dependent (decision points follow the schedule), but
        # every policy's stream derives from the same seeded spec.
        def stream(name):
            result = run_simulation(
                mixed_workload(), 2, POLICIES[name](),
                faults=FaultPlan.from_spec(FAULTS), max_slots=4000)
            return [e.to_dict() for e in result.fault_events]

        fifo, edf = stream("fifo"), stream("edf")
        assert fifo  # faults actually fired
        # FIFO and EDF schedule this workload differently, so their
        # streams differ even under the identical spec/seed
        assert fifo != edf

    def test_rush_beats_fifo_on_critical_job_under_faults(self):
        # The robustness claim, in miniature: under the same moderate
        # fault spec, RUSH protects the critical job's step utility that
        # completion-time-blind FIFO forfeits.
        def outcome(name):
            result = run_simulation(
                mixed_workload(), 2, POLICIES[name](),
                faults=FaultPlan.from_spec(FAULTS), max_slots=4000)
            crit = [r for r in result.records if r.job_id == "zcrit"][0]
            return result.total_utility(), crit.utility_value

        rush_total, rush_crit = outcome("rush")
        fifo_total, fifo_crit = outcome("fifo")
        assert rush_crit == 10.0
        assert fifo_crit == 0.0
        assert rush_total > fifo_total


class TestChaosSweep:
    def test_sweep_shapes_and_baseline(self):
        plan = default_chaos_plan(seed=5)
        report = chaos_sweep(workload(), 2, FifoScheduler, plan,
                             [0.0, 1.0, 2.0], max_slots=2000)
        assert report.scheduler_name == "FIFO"
        assert [p.intensity for p in report.points] == [0.0, 1.0, 2.0]
        assert report.baseline is report.points[0]
        assert report.points[0].fault_events == 0
        assert report.points[2].fault_events >= report.points[1].fault_events
        retention = report.utility_retention()
        assert retention[0.0] == pytest.approx(1.0)

    def test_sweep_is_deterministic(self):
        plan = default_chaos_plan(seed=5)

        def once():
            report = chaos_sweep(workload(), 2, FifoScheduler, plan,
                                 [0.5, 1.5], max_slots=2000)
            return report.to_dict()

        assert once() == once()

    def test_sweep_validation(self):
        plan = default_chaos_plan(seed=5)
        with pytest.raises(ConfigurationError):
            chaos_sweep(workload(), 2, FifoScheduler, plan, [])
        with pytest.raises(ConfigurationError):
            chaos_sweep(workload(), 2, FifoScheduler, plan, [-1.0])
        with pytest.raises(ConfigurationError):
            chaos_sweep(workload(), 2, FifoScheduler, plan, [1.0],
                        max_slots=0)

    def test_report_json_round_trip(self, tmp_path):
        plan = FaultPlan([SpecFailureInjector(),
                          ContainerCrashInjector(rate=0.05)], seed=2)
        report = chaos_sweep(workload(), 2, EdfScheduler, plan,
                             [0.0, 1.0], max_slots=2000)
        path = tmp_path / "sweep.json"
        report.save_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["scheduler"] == "EDF"
        assert loaded["fault_spec"] == plan.to_spec()
        assert len(loaded["points"]) == 2
        keys = set(loaded["points"][0])
        assert {"intensity", "total_utility", "completed", "fallbacks",
                "fault_counts", "timed_out"} <= keys

    def test_summary_table_renders(self):
        plan = default_chaos_plan(seed=5)
        report = chaos_sweep(workload(), 2, FifoScheduler, plan,
                             [0.0, 1.0], max_slots=2000)
        text = report.summary_table()
        assert "chaos sweep" in text
        assert "intensity" in text
        assert "FIFO" in text

    def test_rush_sweep_records_fallbacks_at_high_intensity(self):
        plan = FaultPlan.from_spec(
            {"seed": 3,
             "injectors": [{"kind": "solver_budget", "rate": 0.2}]})
        report = chaos_sweep(workload(), 2, RushScheduler, plan,
                             [0.0, 2.0], max_slots=2000)
        assert sum(report.points[0].fallbacks.values()) == 0
        assert sum(report.points[1].fallbacks.values()) > 0
