"""The durability battery for :mod:`repro.service.journal`.

The property under test is the one the write-ahead log exists for:

    For every crash point and every seeded disk-fault species, a
    restart either recovers the exact pre-crash state (identical
    decision stream, no lost acked job, no duplicate admission) or
    fails loudly with :class:`JournalCorruptError` naming the corrupt
    byte offset.  Never silent loss.

The crash harness drives a fixed submit/cancel/tick script against a
journaled engine through :class:`~repro.faults.disk.FaultyFileOps`,
which kills the "process" at an exact write operation; recovery then
re-opens the directory with real file ops (as ``rush serve
--journal-dir`` would) and the script is re-driven from the top with
idempotency keys — retried submits must dedup, and the final decision
digest must equal the crash-free reference run's.  The exhaustive sweep
(every write op × every species × single- and multi-segment layouts)
carries the ``slow`` marker; a strided subset and a hypothesis-driven
sampler run in the fast lane.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.errors import ConfigurationError, JobStateError
from repro.faults import DISK_FAULT_SPECIES, FaultyFileOps, SimulatedCrashError
from repro.service import (JournalCorruptError, JournalWriteError,
                           ServiceConfig, open_journal, recover_engine)
from repro.service.journal import (SEGMENT_MAGIC, JournalWriter, RealFileOps,
                                   _encode_record)

CONFIG = ServiceConfig(capacity=3, policy="fifo", seed=0)

#: Journal tuning for the two layouts under test: one segment for the
#: whole run, and a deliberately tiny segment so the run rotates and
#: compacts mid-script.
SINGLE_SEGMENT = {"segment_max_bytes": 1 << 20, "checkpoint_every": 5}
MULTI_SEGMENT = {"segment_max_bytes": 1024, "checkpoint_every": 5}

#: The externally-visible event script every run drives.  Tick targets
#: are re-aligned on resume via the reference run's slot trace, so a
#: replayed prefix is never re-applied.
SCRIPT = (
    ("submit", 0), ("tick",), ("submit", 1), ("submit", 2), ("tick",),
    ("cancel", 1), ("tick",), ("submit", 3), ("tick",), ("tick",),
    ("submit", 4), ("tick",), ("tick",), ("tick",), ("tick",), ("tick",),
    ("tick",), ("tick",),
)


def _payload(index):
    return {"task_durations": [1 + index % 3, 2], "budget": 40.0,
            "idempotency_key": f"key-{index}"}


def _drive(engine, slots_after=None):
    """Run SCRIPT; returns (job ids by script index, slot after each op).

    With ``slots_after`` (a reference run's slot trace) the ticks only
    advance the clock up to the reference slot — the resume mode, where
    some prefix of the script was already replayed from the journal.
    """
    ids = {}
    trace = []
    for index, op in enumerate(SCRIPT):
        if op[0] == "submit":
            ids[op[1]] = engine.submit(_payload(op[1]))["job_id"]
        elif op[0] == "cancel":
            try:
                engine.cancel(ids[op[1]])
            except JobStateError:
                pass  # the journaled cancel already went through
        else:
            target = (slots_after[index] if slots_after is not None
                      else engine.slot + 1)
            while engine.slot < target:
                engine.tick()
        trace.append(engine.slot)
    return ids, trace


def _reference(directory, journal_kw, file_ops=None):
    """A crash-free scripted run; returns its invariants."""
    engine, _writer = open_journal(directory, CONFIG, file_ops=file_ops,
                                   **journal_kw)
    ids, trace = _drive(engine)
    digest = engine.decisions_digest()
    jobs = {job["job_id"]: job["state"] for job in engine.list_jobs()}
    engine.close()
    return ids, trace, digest, jobs


def _crash_then_recover(directory, journal_kw, species, at_op, seed, trace,
                        reference_digest, reference_jobs):
    """One sweep cell: inject, crash (maybe), restart, re-drive, compare."""
    ops = FaultyFileOps(RealFileOps(), species=species, at_op=at_op,
                        seed=seed)
    try:
        engine, _writer = open_journal(directory, CONFIG, file_ops=ops,
                                       **journal_kw)
        _drive(engine)
        engine.close()
    except SimulatedCrashError:
        pass  # the process "died"; the directory is the crash state

    # Restart exactly as `rush serve --journal-dir` would, then re-drive
    # the script: replayed submits dedup on their keys, replayed ticks
    # are skipped by the slot alignment.
    engine, _writer = open_journal(directory, CONFIG, **journal_kw)
    _drive(engine, slots_after=trace)
    assert engine.decisions_digest() == reference_digest, (
        f"decision stream diverged after {species} at write {at_op}")
    jobs = {job["job_id"]: job["state"] for job in engine.list_jobs()}
    assert jobs == reference_jobs, (
        f"job set diverged after {species} at write {at_op}")
    engine.close()


def _count_writes(tmp_path, journal_kw):
    """Write ops in a crash-free run — the sweep's crash-point domain."""
    counter = FaultyFileOps(RealFileOps(), species="crash", at_op=1 << 30)
    _reference(tmp_path / "count", journal_kw, file_ops=counter)
    return counter.writes


# ---------------------------------------------------------------------------
# The crash-point sweeps
# ---------------------------------------------------------------------------

CRASHING_SPECIES = tuple(s for s in DISK_FAULT_SPECIES if s != "enospc")


@pytest.mark.slow
@pytest.mark.parametrize("journal_kw",
                         [SINGLE_SEGMENT, MULTI_SEGMENT],
                         ids=["single-segment", "multi-segment"])
def test_crash_point_sweep_exhaustive(tmp_path, journal_kw):
    """Kill at EVERY journaled write × every crash species: recovery exact."""
    total = _count_writes(tmp_path, journal_kw)
    _ids, trace, digest, jobs = _reference(tmp_path / "ref", journal_kw)
    for species in CRASHING_SPECIES:
        for at_op in range(1, total + 1):
            _crash_then_recover(
                tmp_path / f"{species}-{at_op}", journal_kw, species,
                at_op, at_op, trace, digest, jobs)


def test_crash_point_sweep_fast(tmp_path):
    """The CI-lane subset: strided crash points, both tearing species."""
    journal_kw = MULTI_SEGMENT
    total = _count_writes(tmp_path, journal_kw)
    _ids, trace, digest, jobs = _reference(tmp_path / "ref", journal_kw)
    for species in ("torn_write", "dup_tail"):
        for at_op in range(1, total + 1, 5):
            _crash_then_recover(
                tmp_path / f"{species}-{at_op}", journal_kw, species,
                at_op, at_op, trace, digest, jobs)


@settings(max_examples=12, deadline=None)
@given(species=st.sampled_from(CRASHING_SPECIES),
       fraction=st.floats(min_value=0.0, max_value=1.0),
       seed=st.integers(min_value=0, max_value=999))
def test_crash_point_property(tmp_path_factory, species, fraction, seed):
    """Hypothesis sampler over (species × crash point × tear seed)."""
    tmp_path = tmp_path_factory.mktemp("crash-prop")
    journal_kw = MULTI_SEGMENT
    total = _count_writes(tmp_path, journal_kw)
    at_op = 1 + int(fraction * (total - 1))
    _ids, trace, digest, jobs = _reference(tmp_path / "ref", journal_kw)
    _crash_then_recover(tmp_path / "run", journal_kw, species, at_op,
                        seed, trace, digest, jobs)


# ---------------------------------------------------------------------------
# Loud failure: corruption names the byte offset
# ---------------------------------------------------------------------------

def _first_segment(directory):
    return sorted(Path(directory).glob("wal-*.log"))[0]


def test_mid_log_corruption_is_loud_and_names_the_offset(tmp_path):
    _reference(tmp_path, SINGLE_SEGMENT)
    segment = _first_segment(tmp_path)
    blob = bytearray(segment.read_bytes())
    # Flip one payload byte in the FIRST record: a full frame whose CRC
    # cannot match — never a tolerable torn tail.
    offset = len(SEGMENT_MAGIC)
    blob[offset + 8 + 2] ^= 0xFF
    segment.write_bytes(bytes(blob))
    with pytest.raises(JournalCorruptError) as exc_info:
        recover_engine(tmp_path)
    err = exc_info.value
    assert err.offset == offset
    assert err.path == str(segment)
    assert f"byte {offset}" in str(err)
    assert err.status == 500 and err.code == "journal-corrupt"
    # The serve path refuses identically: loud, typed, non-zero exit.
    with pytest.raises(JournalCorruptError):
        open_journal(tmp_path, CONFIG)


def test_sequence_gap_is_corrupt(tmp_path):
    engine, writer = open_journal(tmp_path, CONFIG, **SINGLE_SEGMENT)
    engine.submit(_payload(0))
    last_seq = writer.seq
    engine.close()
    segment = sorted(Path(tmp_path).glob("wal-*.log"))[-1]
    with open(segment, "ab") as handle:
        handle.write(_encode_record(last_seq + 3, {"kind": "tick", "due": 0}))
    with pytest.raises(JournalCorruptError, match="sequence gap"):
        recover_engine(tmp_path)


def test_torn_tail_is_truncated_not_fatal(tmp_path):
    _ids, _trace, digest, _jobs = _reference(tmp_path, SINGLE_SEGMENT)
    segment = sorted(Path(tmp_path).glob("wal-*.log"))[-1]
    with open(segment, "ab") as handle:
        handle.write(struct.pack("<II", 4096, 0)[:5])  # half a header
    engine, stats = recover_engine(tmp_path)
    assert stats["truncated_bytes"] == 5
    assert engine.decisions_digest() == digest
    engine.close()


def test_duplicated_tail_record_is_deduplicated(tmp_path):
    _ids, _trace, digest, _jobs = _reference(tmp_path, SINGLE_SEGMENT)
    segment = sorted(Path(tmp_path).glob("wal-*.log"))[-1]
    blob = segment.read_bytes()
    # Re-append the final frame verbatim: the classic crashed-retry dup.
    length, _crc = struct.unpack_from("<II", blob, _last_frame_offset(blob))
    frame = blob[_last_frame_offset(blob):]
    with open(segment, "ab") as handle:
        handle.write(frame)
    engine, stats = recover_engine(tmp_path)
    assert stats["deduped"] == 1
    assert engine.decisions_digest() == digest
    engine.close()


def _last_frame_offset(blob):
    offset = len(SEGMENT_MAGIC)
    last = offset
    while offset < len(blob):
        length, _crc = struct.unpack_from("<II", blob, offset)
        last = offset
        offset += 8 + length
    return last


def test_records_without_anchor_refuse_to_guess(tmp_path):
    _reference(tmp_path, SINGLE_SEGMENT)
    (Path(tmp_path) / "anchor.json").unlink()
    with pytest.raises(JournalCorruptError, match="no anchor"):
        open_journal(tmp_path, CONFIG)


# ---------------------------------------------------------------------------
# Writer semantics
# ---------------------------------------------------------------------------

def test_enospc_is_retryable_and_state_stays_consistent(tmp_path):
    # Write ops on a fresh journal: 1 = segment magic, 2 = init anchor,
    # 3 = first submit's record — so op 4 is the second submit's.
    ops = FaultyFileOps(RealFileOps(), species="enospc", at_op=4)
    engine, _writer = open_journal(tmp_path, CONFIG, file_ops=ops,
                                   auto_compact=False)
    engine.submit(_payload(0))
    with pytest.raises(JournalWriteError) as exc_info:
        engine.submit(_payload(1))
    assert exc_info.value.status == 503
    assert exc_info.value.code == "journal-unavailable"
    # The failed admission left nothing behind: same key retries clean.
    assert len(engine.list_jobs()) == 1
    retry = engine.submit(_payload(1))
    assert "deduplicated" not in retry
    engine.tick(12)
    digest = engine.decisions_digest()
    engine.close()
    engine, _stats = recover_engine(tmp_path)
    assert engine.decisions_digest() == digest
    engine.close()


def test_idempotency_key_dedup_is_pinned(tmp_path):
    engine, _writer = open_journal(tmp_path, CONFIG)
    first = engine.submit(_payload(0))
    again = engine.submit(_payload(0))
    assert again["deduplicated"] is True
    assert again["job_id"] == first["job_id"]
    assert len(engine.list_jobs()) == 1
    engine.close()
    # The key ledger survives recovery: a retry after restart dedups too.
    engine, _stats = recover_engine(tmp_path)
    after = engine.submit(_payload(0))
    assert after["deduplicated"] is True
    assert after["job_id"] == first["job_id"]
    assert len(engine.list_jobs()) == 1
    engine.close()


def test_compaction_drops_covered_segments(tmp_path):
    engine, writer = open_journal(tmp_path, CONFIG, **MULTI_SEGMENT)
    ids, _trace = _drive(engine)
    segments = sorted(Path(tmp_path).glob("wal-*.log"))
    assert len(segments) == 1, "rotation should have compacted the rest"
    anchor = json.loads((Path(tmp_path) / "anchor.json").read_text())
    assert anchor["journal_seq"] > 0
    digest = engine.decisions_digest()
    engine.close()
    engine, stats = recover_engine(tmp_path)
    assert engine.decisions_digest() == digest
    engine.close()


def test_open_journal_rejects_a_different_config(tmp_path):
    _reference(tmp_path, SINGLE_SEGMENT)
    other = ServiceConfig(capacity=9, policy="fifo", seed=0)
    with pytest.raises(ConfigurationError, match="different service config"):
        open_journal(tmp_path, other)


def test_fresh_directory_requires_a_config(tmp_path):
    with pytest.raises(ConfigurationError, match="no journal"):
        open_journal(tmp_path / "empty")


def test_closed_writer_refuses_appends(tmp_path):
    writer = JournalWriter(tmp_path, **SINGLE_SEGMENT)
    writer.append({"kind": "tick", "due": 0})
    writer.close()
    writer.close()  # idempotent
    with pytest.raises(JournalWriteError, match="closed"):
        writer.append({"kind": "tick", "due": 1})


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------

def test_journal_metrics_and_recovery_span(tmp_path):
    handle = obs.enable(trace=True, metrics=True, ledger=False)
    try:
        _reference(tmp_path, SINGLE_SEGMENT)
        text = handle.metrics.render_prometheus()
        assert "rush_journal_appends_total" in text
        assert "rush_journal_fsyncs_total" in text
        # Tear the tail so the truncation counter fires during recovery.
        segment = sorted(Path(tmp_path).glob("wal-*.log"))[-1]
        with open(segment, "ab") as fh:
            fh.write(b"\x99\x00\x00")
        engine, stats = recover_engine(tmp_path)
        engine.close()
        assert stats["truncated_bytes"] == 3
        text = handle.metrics.render_prometheus()
        assert "rush_journal_recovery_truncated_bytes" in text
        assert any(span.name == "journal.recover"
                   for span in handle.tracer.spans)
    finally:
        obs.reset()
