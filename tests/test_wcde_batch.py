"""Batch WCDE ≡ scalar WCDE, element by element (ISSUE 6 satellite).

``solve_wcde_batch`` pads every narrow bracket to the batch's widest row
and runs the wide rows' bisections in masked lockstep; neither transform
may change any answer.  These properties pin the equivalence across
random PMF batches, thetas and deltas — including the degenerate
single-bin reference and deliberately mixed-length batches where the
padding actually kicks in — plus the batch-composition invariance the
process-pool sharding relies on.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wcde import (WcdeCache, solve_wcde, solve_wcde_batch,
                             worst_case_demand)
from repro.errors import ConfigurationError
from repro.estimation.pmf import Pmf

raw_weights = st.lists(st.floats(min_value=0.01, max_value=10.0,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=40)

pmf_batches = st.lists(raw_weights, min_size=1, max_size=8)

thetas = st.one_of(st.sampled_from([0.0, 0.5, 0.9, 0.99, 1.0]),
                   st.floats(min_value=0.0, max_value=1.0,
                             allow_nan=False))

deltas = st.one_of(st.sampled_from([0.0, 0.05, 0.7, 5.0]),
                   st.floats(min_value=0.0, max_value=10.0,
                             allow_nan=False))


def _assert_matches_scalar(references, theta, delta):
    batch = solve_wcde_batch(references, theta, delta)
    assert len(batch) == len(references)
    for reference, got in zip(references, batch):
        want = solve_wcde(reference, theta, delta, need_worst_pmf=False)
        assert got.eta_bin == want.eta_bin
        assert got.reference_quantile == want.reference_quantile
        assert math.isclose(got.worst_kl, want.worst_kl,
                            rel_tol=0.0, abs_tol=0.0)


class TestBatchEqualsScalar:
    @settings(max_examples=150, deadline=None)
    @given(pmf_batches, thetas, deltas)
    def test_random_batches(self, raws, theta, delta):
        references = [Pmf(raw, normalize=True) for raw in raws]
        _assert_matches_scalar(references, theta, delta)

    @settings(max_examples=50, deadline=None)
    @given(raw_weights, thetas, deltas)
    def test_singleton_batch(self, raw, theta, delta):
        _assert_matches_scalar([Pmf(raw, normalize=True)], theta, delta)

    def test_single_bin_reference(self):
        """Impulse support: anchor == ceiling, the shortcut path."""
        impulse = Pmf.impulse(0, tau_max=0)
        _assert_matches_scalar([impulse, impulse], 0.9, 0.7)

    def test_mixed_length_padding(self):
        """Wildly different supports force real padding of narrow rows."""
        references = [
            Pmf([1.0], normalize=True),
            Pmf([0.5, 0.5], normalize=True),
            Pmf([0.1] * 40, normalize=True),
            Pmf([2.0, 0.01, 0.01, 3.0], normalize=True),
        ]
        for theta in (0.0, 0.5, 0.9, 1.0):
            for delta in (0.0, 0.05, 0.7, 5.0):
                _assert_matches_scalar(references, theta, delta)

    @settings(max_examples=40, deadline=None)
    @given(pmf_batches, st.integers(min_value=1, max_value=4),
           thetas, deltas)
    def test_batch_composition_invariance(self, raws, chunks, theta, delta):
        """Sharding a batch never changes any row (the pool contract)."""
        references = [Pmf(raw, normalize=True) for raw in raws]
        whole = solve_wcde_batch(references, theta, delta)
        size = -(-len(references) // chunks)
        split = []
        for i in range(0, len(references), size):
            split.extend(solve_wcde_batch(references[i:i + size],
                                          theta, delta))
        assert [(r.eta_bin, r.reference_quantile, r.iterations)
                for r in whole] == \
               [(r.eta_bin, r.reference_quantile, r.iterations)
                for r in split]


class TestBatchValidationAndEdges:
    def test_empty_batch(self):
        assert solve_wcde_batch([], 0.9, 0.7) == []

    def test_bad_theta(self, gaussian_pmf):
        with pytest.raises(ConfigurationError):
            solve_wcde_batch([gaussian_pmf], 1.2, 0.5)

    def test_bad_delta(self, gaussian_pmf):
        with pytest.raises(ConfigurationError):
            solve_wcde_batch([gaussian_pmf], 0.9, -0.5)

    def test_iterations_match_scalar(self, gaussian_pmf, skewed_pmf):
        """The per-row bisection count is preserved (plan exports it)."""
        for theta, delta in ((0.9, 0.7), (0.5, 0.05), (0.99, 5.0)):
            batch = solve_wcde_batch([gaussian_pmf, skewed_pmf],
                                     theta, delta)
            for reference, got in zip((gaussian_pmf, skewed_pmf), batch):
                want = solve_wcde(reference, theta, delta,
                                  need_worst_pmf=False)
                assert got.iterations == want.iterations


class TestCacheBatchAccounting:
    def test_matches_sequential_scalar_loop(self, gaussian_pmf, skewed_pmf):
        """solve_batch counters replay a per-item solve() loop exactly."""
        refs = [gaussian_pmf, skewed_pmf, gaussian_pmf, gaussian_pmf]
        batched = WcdeCache(maxsize=16)
        results = batched.solve_batch(refs, 0.9, 0.7)
        sequential = WcdeCache(maxsize=16)
        expected = [sequential.solve(r, 0.9, 0.7) for r in refs]
        assert (batched.hits, batched.misses) == \
               (sequential.hits, sequential.misses) == (2, 2)
        assert [r.eta_bin for r in results] == \
               [r.eta_bin for r in expected]

    def test_worst_case_demand_unchanged(self, gaussian_pmf):
        """The convenience wrapper still routes through the scalar path."""
        assert worst_case_demand(gaussian_pmf, 0.9, 0.7) == \
            solve_wcde_batch([gaussian_pmf], 0.9, 0.7)[0].eta_bin
