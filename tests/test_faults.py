"""Unit tests for the repro.faults subsystem.

Every injector is exercised in isolation on a tiny cluster, the plan's
spec round-trip and determinism contract are pinned down, and the
simulator-level satellites (timeout flagging, end-to-end seed
reproducibility) get their regression tests.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import (ClusterSimulator, JobSpec, TaskState,
                           run_simulation)
from repro.errors import (ConfigurationError, SimulationTimeoutError)
from repro.faults import (
    ContainerCrashInjector,
    DemandBurstInjector,
    FaultLog,
    FaultPlan,
    INJECTOR_REGISTRY,
    JobKillInjector,
    SampleCorruptionInjector,
    SolverBudgetInjector,
    SpecFailureInjector,
    StragglerInjector,
    default_chaos_plan,
    injector_from_spec,
    load_fault_plan,
)
from repro.schedulers import FifoScheduler, RushScheduler
from repro.utility import LinearUtility


def spec(job_id="j", durations=(3, 3), failure_prob=0.0, arrival=0,
         budget=100.0):
    return JobSpec(job_id=job_id, arrival=arrival,
                   task_durations=tuple(durations),
                   utility=LinearUtility(budget, 1.0),
                   budget=budget, failure_prob=failure_prob)


def make_sim(specs, capacity=2, plan=None, seed=0):
    sim = ClusterSimulator(capacity, FifoScheduler(), seed=seed, faults=plan)
    for s in specs:
        sim.submit(s)
    return sim


def plan_of(*injectors, seed=7, intensity=1.0):
    return FaultPlan(list(injectors), seed=seed, intensity=intensity)


class TestFaultLog:
    def test_record_and_counts(self):
        log = FaultLog()
        log.record(0, "crash", "t0", container=1)
        log.record(2, "crash", "t1")
        log.record(2, "straggler", "t1", extra_slots=3)
        assert len(log) == 3
        assert log.count() == 3
        assert log.count("crash") == 2
        assert log.counts_by_kind() == {"crash": 2, "straggler": 1}

    def test_events_are_snapshots(self):
        log = FaultLog()
        log.record(1, "k", "t")
        events = log.events
        log.record(2, "k", "t")
        assert len(events) == 1  # earlier snapshot unaffected

    def test_to_dicts_round_trips_json(self):
        log = FaultLog()
        log.record(5, "burst", "cluster", until_slot=8)
        dumped = json.dumps(log.to_dicts())
        assert json.loads(dumped) == [
            {"slot": 5, "kind": "burst", "target": "cluster",
             "detail": {"until_slot": 8}}]


class TestInjectorValidation:
    def test_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            ContainerCrashInjector(rate=-0.1)
        with pytest.raises(ConfigurationError):
            ContainerCrashInjector(rate=1.5)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            ContainerCrashInjector(revoke_slots=-1)
        with pytest.raises(ConfigurationError):
            StragglerInjector(slowdown=1.0)
        with pytest.raises(ConfigurationError):
            DemandBurstInjector(magnitude=0.9)
        with pytest.raises(ConfigurationError):
            DemandBurstInjector(width=0)
        with pytest.raises(ConfigurationError):
            SampleCorruptionInjector(low=0.0)
        with pytest.raises(ConfigurationError):
            SampleCorruptionInjector(low=2.0, high=1.0)
        with pytest.raises(ConfigurationError):
            SolverBudgetInjector(depth=0)

    def test_registry_covers_all_kinds(self):
        assert set(INJECTOR_REGISTRY) == {
            "spec_failure", "container_crash", "straggler", "demand_burst",
            "sample_corruption", "job_kill", "solver_budget"}

    def test_injector_from_spec_errors(self):
        with pytest.raises(ConfigurationError):
            injector_from_spec({"no_kind": True})
        with pytest.raises(ConfigurationError):
            injector_from_spec({"kind": "nope"})
        with pytest.raises(ConfigurationError):
            injector_from_spec({"kind": "straggler", "bogus": 1})


class TestSpecFailureInjector:
    def test_certain_failure_arms_every_launch(self):
        sim = make_sim([spec(durations=(4,), failure_prob=0.99)],
                       plan=plan_of(SpecFailureInjector(), intensity=50.0))
        sim.step()
        task = sim.job("j").tasks[0]
        assert task.fail_after is not None
        assert 1 <= task.fail_after <= task.duration
        assert sim.fault_log.count("spec_failure") == 1

    def test_zero_probability_never_fires(self):
        result = run_simulation([spec(durations=(2, 2), failure_prob=0.0)],
                                2, FifoScheduler(),
                                faults=plan_of(SpecFailureInjector()))
        assert result.fault_count() == 0
        assert result.task_failures == 0

    def test_job_completes_through_retries(self):
        result = run_simulation([spec(durations=(2, 2), failure_prob=0.6)],
                                2, FifoScheduler(),
                                faults=plan_of(SpecFailureInjector()),
                                max_slots=10_000)
        assert result.completed_count == 1
        assert result.task_failures == result.fault_count("spec_failure")


class TestContainerCrashInjector:
    def test_crash_fails_running_task(self):
        sim = make_sim([spec(durations=(5,))],
                       plan=plan_of(ContainerCrashInjector(rate=1.0)))
        sim.step()   # launch
        sim.step()   # crash fires, task fails on advance
        job = sim.job("j")
        assert job.failed_count >= 1
        assert sim.task_failures >= 1
        assert sim.fault_log.count("container_crash") >= 1

    def test_revocation_takes_container_offline(self):
        sim = make_sim([spec(durations=(5,))], capacity=3,
                       plan=plan_of(ContainerCrashInjector(
                           rate=1.0, revoke_slots=4)))
        sim.step()
        sim.step()  # crash + revoke
        crashed = [c for c in sim.containers if c.offline_until > sim.now]
        assert crashed
        assert sim.free_container_count < sim.capacity
        for c in crashed:
            assert not c.is_available(sim.now)
            assert c.is_available(c.offline_until)

    def test_idle_containers_never_crash(self):
        sim = make_sim([spec(arrival=50)],
                       plan=plan_of(ContainerCrashInjector(rate=1.0)))
        for _ in range(10):
            sim.step()
        assert sim.fault_log.count("container_crash") == 0


class TestStragglerInjector:
    def test_straggle_extends_duration_once(self):
        sim = make_sim([spec(durations=(10,))],
                       plan=plan_of(StragglerInjector(rate=1.0, slowdown=2.0)))
        sim.step()  # launch
        sim.step()  # straggle fires once
        task = sim.job("j").tasks[0]
        assert task.duration > 10
        first_duration = task.duration
        sim.step()  # at-most-once: no further stretch
        assert task.duration == first_duration
        assert sim.fault_log.count("straggler") == 1

    def test_straggled_task_still_completes(self):
        result = run_simulation([spec(durations=(6, 6))], 2, FifoScheduler(),
                                faults=plan_of(StragglerInjector(
                                    rate=0.5, slowdown=2.0)),
                                max_slots=1000)
        assert result.completed_count == 1
        assert not result.timed_out


class TestDemandBurstInjector:
    def test_burst_inflates_launches_in_window(self):
        inj = DemandBurstInjector(rate=1.0, magnitude=2.0, width=3)
        sim = make_sim([spec(durations=(4, 4))], capacity=1,
                       plan=plan_of(inj))
        sim.step()  # burst starts; first launch inflated
        task = sim.job("j").tasks[0]
        assert task.duration == 8
        kinds = sim.fault_log.counts_by_kind()
        assert kinds["demand_burst"] == 2  # window-open + inflated launch

    def test_no_inflation_outside_window(self):
        inj = DemandBurstInjector(rate=0.0, magnitude=2.0, width=3)
        sim = make_sim([spec(durations=(4,))], plan=plan_of(inj))
        sim.step()
        assert sim.job("j").tasks[0].duration == 4

    def test_reset_clears_window(self):
        inj = DemandBurstInjector(rate=1.0)
        inj._burst_until = 99
        inj.reset()
        assert not inj.bursting


class TestSampleCorruptionInjector:
    def test_corrupts_observation_not_ground_truth(self):
        sim = make_sim([spec(durations=(3, 3))],
                       plan=plan_of(SampleCorruptionInjector(
                           rate=1.0, low=3.0, high=3.0)))
        while sim._active or sim._pending_arrivals:
            sim.step()
        done = [t for t in sim.job("j").tasks
                if t.state is TaskState.COMPLETED]
        assert done
        for task in done:
            assert task.duration == 3          # ground truth intact
            assert task.observed_duration == 9.0
            assert task.runtime_sample == 9.0
        assert sim.fault_log.count("sample_corruption") == len(done)

    def test_metrics_use_ground_truth(self):
        corrupt = run_simulation(
            [spec(durations=(3, 3))], 2, FifoScheduler(),
            faults=plan_of(SampleCorruptionInjector(rate=1.0, low=4.0,
                                                    high=4.0)))
        clean = run_simulation([spec(durations=(3, 3))], 2, FifoScheduler())
        assert corrupt.records[0].runtime == clean.records[0].runtime


class TestJobKillInjector:
    def test_kill_fails_all_running_attempts(self):
        sim = make_sim([spec(durations=(8, 8))],
                       plan=plan_of(JobKillInjector(rate=1.0)))
        sim.step()  # both tasks launch; nothing running at kill time yet
        sim.step()  # kill fires on the running attempts
        job = sim.job("j")
        assert job.failed_count >= 2
        events = [e for e in sim.fault_log if e.kind == "job_kill"]
        assert events and events[-1].target == "j"
        assert events[-1].detail["killed_attempts"] == 2

    def test_killed_job_finishes_eventually(self):
        result = run_simulation([spec(durations=(4, 4))], 2, FifoScheduler(),
                                faults=plan_of(JobKillInjector(rate=0.3)),
                                max_slots=10_000)
        assert result.completed_count == 1

    def test_no_running_work_is_a_noop(self):
        sim = make_sim([spec(arrival=50)],
                       plan=plan_of(JobKillInjector(rate=1.0)))
        sim.step()
        assert sim.fault_log.count("job_kill") == 0


class TestSolverBudgetInjector:
    def test_arms_rush_degradation(self):
        sim = ClusterSimulator(
            2, RushScheduler(), seed=0,
            faults=plan_of(SolverBudgetInjector(rate=1.0, depth=1)))
        sim.submit(spec(durations=(3, 3)))
        sim.step()
        assert sim.fault_log.count("solver_budget") >= 1
        assert sim.scheduler.degradation.counts.get("cold_exact", 0) >= 1

    def test_noop_on_plain_scheduler(self):
        sim = make_sim([spec(durations=(2,))],
                       plan=plan_of(SolverBudgetInjector(rate=1.0)))
        sim.step()  # FifoScheduler has no inject_solver_fault
        assert sim.fault_log.count("solver_budget") == 0


class TestFaultPlanSpec:
    def test_round_trip(self):
        plan = default_chaos_plan(seed=11, intensity=1.5)
        rebuilt = FaultPlan.from_spec(plan.to_spec())
        assert rebuilt.to_spec() == plan.to_spec()
        assert rebuilt.seed == 11
        assert rebuilt.intensity == 1.5

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec({"seed": 1, "typo": True})
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec({"injectors": "not-a-list"})
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec([])

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text(json.dumps(
            {"seed": 3, "injectors": [{"kind": "straggler", "rate": 0.1}]}))
        plan = load_fault_plan(path)
        assert plan.seed == 3
        assert plan.injectors[0].kind == "straggler"
        with pytest.raises(ConfigurationError):
            (tmp_path / "bad.json").write_text("{nope")
            load_fault_plan(tmp_path / "bad.json")

    def test_negative_intensity_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan([], intensity=-0.5)

    def test_non_injector_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(["not an injector"])  # type: ignore[list-item]


class TestFaultPlanSemantics:
    def test_rebind_rejected(self):
        plan = plan_of(SpecFailureInjector())
        make_sim([spec()], plan=plan)
        with pytest.raises(ConfigurationError):
            make_sim([spec()], plan=plan)

    def test_scaled_returns_fresh_unbound_copy(self):
        plan = plan_of(StragglerInjector(rate=0.1), seed=5)
        make_sim([spec()], plan=plan)  # bind the original
        scaled = plan.scaled(2.0)
        assert not scaled.bound
        assert scaled.intensity == 2.0
        assert scaled.seed == 5
        assert scaled.injectors[0].rate == 0.1  # rate untouched; dial moved

    def test_zero_intensity_disables_everything(self):
        result = run_simulation(
            [spec(durations=(3, 3), failure_prob=0.9)], 2, FifoScheduler(),
            faults=default_chaos_plan(seed=1, intensity=0.0))
        assert result.fault_count() == 0
        assert result.task_failures == 0

    def test_default_plan_is_legacy_spec_failure_only(self):
        plan = FaultPlan.default()
        assert [i.kind for i in plan.injectors] == ["spec_failure"]

    def test_plan_seed_overrides_sim_seed(self):
        def events(plan_seed, sim_seed):
            result = run_simulation(
                [spec(durations=(4, 4), failure_prob=0.5)], 2,
                FifoScheduler(), seed=sim_seed,
                faults=FaultPlan([SpecFailureInjector()], seed=plan_seed))
            return [e.to_dict() for e in result.fault_events]

        assert events(3, 0) == events(3, 99)  # plan seed wins

    def test_monotone_coupling_superset(self):
        # Sample corruption never alters the trajectory, so decision draws
        # align exactly across intensities: the events fired at the lower
        # intensity are a strict subset of those at the higher one.
        def fired(intensity):
            result = run_simulation(
                [spec(job_id=f"j{k}", durations=(3, 3, 3), arrival=2 * k)
                 for k in range(4)], 3, FifoScheduler(),
                faults=FaultPlan([SampleCorruptionInjector(rate=0.3)],
                                 seed=13, intensity=intensity))
            return {(e.slot, e.target) for e in result.fault_events}

        low, high = fired(0.5), fired(1.0)
        assert low <= high
        assert len(high) > len(low)


class TestSimulatorTimeout:
    def test_timed_out_flagged_not_silent(self):
        result = run_simulation([spec(durations=(50,))], 1, FifoScheduler(),
                                max_slots=5)
        assert result.timed_out
        assert result.slots_simulated == 5
        assert result.completed_count == 0
        assert not result.records[0].completed

    def test_raise_on_timeout(self):
        with pytest.raises(SimulationTimeoutError):
            run_simulation([spec(durations=(50,))], 1, FifoScheduler(),
                           max_slots=5, raise_on_timeout=True)

    def test_complete_run_not_flagged(self):
        result = run_simulation([spec(durations=(2,))], 1, FifoScheduler(),
                                max_slots=100, raise_on_timeout=True)
        assert not result.timed_out


def _comparable(result):
    d = result.to_dict()
    d.pop("planner_seconds", None)  # wall-clock, not deterministic
    return d


class TestSeedReproducibility:
    def test_identical_seeds_identical_results(self):
        specs = [spec(job_id=f"j{k}", durations=(3, 4), arrival=k,
                      failure_prob=0.3) for k in range(4)]

        def once():
            return run_simulation(
                specs, 3, RushScheduler(), seed=42,
                faults=default_chaos_plan(intensity=1.0), max_slots=5000)

        assert _comparable(once()) == _comparable(once())

    def test_different_seeds_diverge(self):
        specs = [spec(job_id=f"j{k}", durations=(4, 4), arrival=k,
                      failure_prob=0.5) for k in range(4)]

        def events(seed):
            result = run_simulation(specs, 3, FifoScheduler(), seed=seed,
                                    faults=default_chaos_plan(), max_slots=5000)
            return [e.to_dict() for e in result.fault_events]

        assert events(1) != events(2)
