"""Tests for the LP baseline and its equivalence to onion peeling."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, InfeasiblePlanError
from repro.core.onion import OnionJob, solve_onion
from repro.core.tas_lp import lp_feasible, solve_tas_lp
from repro.utility import ConstantUtility, LinearUtility, SigmoidUtility


class TestLpFeasible:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lp_feasible([1], [1], 0, 10)
        with pytest.raises(ConfigurationError):
            lp_feasible([1], [1], 1, 0)

    def test_trivial_cases(self):
        assert lp_feasible([], [], 2, 10)
        assert lp_feasible([5], [0], 2, 10)  # zero demand ignores deadline
        assert not lp_feasible([-math.inf], [1], 2, 10)
        assert not lp_feasible([0], [1], 2, 10)
        assert lp_feasible([math.inf], [19], 2, 10)   # capped at horizon
        assert not lp_feasible([math.inf], [21], 2, 10)

    def test_single_job_threshold(self):
        # 10 units on 2 containers needs 5 slots.
        assert lp_feasible([5], [10], 2, 20)
        assert not lp_feasible([4], [10], 2, 20)

    def test_staggered_deadlines(self):
        # job 1: 4 units by slot 2 (needs both containers);
        # job 2: 4 units by slot 4 (uses the remaining space exactly).
        assert lp_feasible([2, 4], [4, 4], 2, 10)
        assert not lp_feasible([2, 3], [4, 4], 2, 10)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=4),
           st.lists(st.tuples(st.integers(min_value=1, max_value=15),
                              st.floats(min_value=0.5, max_value=30.0)),
                    min_size=1, max_size=5))
    def test_theorem2_equivalence(self, capacity, raw):
        """LP feasibility coincides with the staircase condition (12)."""
        deadlines = [d for d, _ in raw]
        demands = [eta for _, eta in raw]
        horizon = 20

        prefix, staircase = 0.0, True
        for d, eta in sorted(zip(deadlines, demands)):
            prefix += eta
            if prefix > capacity * d + 1e-9:
                staircase = False
                break
        assert lp_feasible(deadlines, demands, capacity, horizon) == staircase


class TestSolveTasLp:
    def test_validation(self):
        with pytest.raises(InfeasiblePlanError):
            solve_tas_lp([OnionJob("a", 1, LinearUtility(5, 1))], 0)
        with pytest.raises(ConfigurationError):
            solve_tas_lp([OnionJob("a", 1, LinearUtility(5, 1))], 1, tolerance=0)

    def test_zero_demand_short_circuit(self):
        result = solve_tas_lp([OnionJob("a", 0, LinearUtility(5, 2))], 2)
        assert result.targets["a"].target_completion == 0

    def test_horizon_infeasible(self):
        with pytest.raises(InfeasiblePlanError):
            solve_tas_lp([OnionJob("a", 100, LinearUtility(5, 1))], 1, horizon=5)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_onion_peeling(self, seed):
        """The LP oracle and the staircase oracle produce the same layers."""
        rng = np.random.default_rng(seed)
        jobs = []
        for i in range(5):
            demand = float(rng.integers(2, 30))
            budget = float(rng.integers(5, 50))
            priority = float(rng.integers(1, 5))
            kind = int(rng.integers(3))
            if kind == 0:
                utility = LinearUtility(budget, priority)
            elif kind == 1:
                utility = SigmoidUtility(budget, priority, beta=0.3)
            else:
                utility = ConstantUtility(priority)
            jobs.append(OnionJob(f"j{i}", demand, utility))
        capacity = 3
        onion = solve_onion(jobs, capacity, tolerance=1e-3)
        lp = solve_tas_lp(jobs, capacity, tolerance=1e-3)
        for job in jobs:
            assert (lp.targets[job.job_id].utility_value
                    == pytest.approx(onion.targets[job.job_id].utility_value,
                                     abs=0.05, rel=0.02))

    def test_utility_vectors_match(self):
        jobs = [
            OnionJob("a", 20, LinearUtility(30, 2)),
            OnionJob("b", 15, SigmoidUtility(25, 3, beta=0.2)),
            OnionJob("c", 10, ConstantUtility(1)),
        ]
        onion = solve_onion(jobs, 2, tolerance=1e-3)
        lp = solve_tas_lp(jobs, 2, tolerance=1e-3)
        for u_lp, u_on in zip(lp.utility_vector(), onion.utility_vector()):
            assert u_lp == pytest.approx(u_on, abs=0.05, rel=0.02)
