"""Tests for the planner degradation ladder and solver time budgets."""

from __future__ import annotations

import time

import pytest

from repro.cluster import ClusterSimulator, JobSpec, run_simulation
from repro.core.degradation import LADDER, DegradationPolicy
from repro.core.onion import OnionJob, solve_onion
from repro.core.planner import PlannerJob, RushPlanner
from repro.errors import (ConfigurationError, InfeasiblePlanError,
                          SolverBudgetError)
from repro.estimation.gaussian import GaussianEstimator
from repro.faults import FaultPlan, SolverBudgetInjector
from repro.schedulers import EdfScheduler, RushScheduler
from repro.utility import LinearUtility


def spec(job_id="j", durations=(3, 3), arrival=0, budget=100.0):
    return JobSpec(job_id=job_id, arrival=arrival,
                   task_durations=tuple(durations),
                   utility=LinearUtility(budget, 1.0), budget=budget)


def planner_jobs(n=2):
    jobs = []
    for k in range(n):
        de = GaussianEstimator(prior_mean=5.0, prior_std=1.0)
        jobs.append(PlannerJob(f"j{k}", LinearUtility(50.0, 1.0),
                               de.estimate(pending_tasks=3)))
    return jobs


class TestDegradationPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DegradationPolicy(time_budget=0.0)
        with pytest.raises(ConfigurationError):
            DegradationPolicy(time_budget=-1.0)
        with pytest.raises(ConfigurationError):
            DegradationPolicy(cold_budget_factor=0.5)

    def test_cold_budget_scales(self):
        policy = DegradationPolicy(time_budget=2.0, cold_budget_factor=3.0)
        assert policy.cold_time_budget == 6.0
        assert DegradationPolicy().cold_time_budget is None

    def test_ladder_order(self):
        assert LADDER == ("primary", "cold_exact", "last_good", "greedy_edf")

    def test_primary_success_counts_nothing(self):
        policy = DegradationPolicy()
        planner = RushPlanner(capacity=4)
        plan = planner.plan(planner_jobs())
        outcome = policy.execute([("primary", lambda: plan)], None)
        assert outcome.rung == "primary"
        assert not outcome.degraded
        assert outcome.plan is plan
        assert policy.counts == {}
        assert plan.stats.fallback == ""

    def test_fallback_to_second_attempt(self):
        policy = DegradationPolicy()
        planner = RushPlanner(capacity=4)
        plan = planner.plan(planner_jobs())

        def boom():
            raise SolverBudgetError("nope")

        outcome = policy.execute(
            [("primary", boom), ("cold_exact", lambda: plan)], None)
        assert outcome.rung == "cold_exact"
        assert outcome.degraded
        assert outcome.errors == ["primary: nope"]
        assert policy.counts == {"cold_exact": 1}
        assert plan.stats.fallback == "cold_exact"

    def test_last_good_reuse(self):
        policy = DegradationPolicy()
        planner = RushPlanner(capacity=4)
        stale = planner.plan(planner_jobs())

        def boom():
            raise InfeasiblePlanError("broken")

        outcome = policy.execute(
            [("primary", boom), ("cold_exact", boom)], stale)
        assert outcome.rung == "last_good"
        assert outcome.plan is stale
        assert stale.stats.fallback == "last_good"
        assert policy.counts == {"last_good": 1}

    def test_bottom_of_ladder(self):
        policy = DegradationPolicy()

        def boom():
            raise SolverBudgetError("starved")

        outcome = policy.execute(
            [("primary", boom), ("cold_exact", boom)], None)
        assert outcome.rung == "greedy_edf"
        assert outcome.plan is None
        assert len(outcome.errors) == 2
        assert policy.total_fallbacks == 1

    def test_non_repro_errors_propagate(self):
        policy = DegradationPolicy()

        def bug():
            raise ValueError("genuine bug")

        with pytest.raises(ValueError):
            policy.execute([("primary", bug)], None)


class TestSolverTimeBudget:
    def test_onion_budget_exceeded_raises(self):
        jobs = [OnionJob(f"j{k}", 10.0, LinearUtility(40.0, 1.0))
                for k in range(4)]
        with pytest.raises(SolverBudgetError):
            solve_onion(jobs, 4, budget_deadline=time.perf_counter() - 1.0)

    def test_onion_generous_budget_is_clean(self):
        jobs = [OnionJob(f"j{k}", 10.0, LinearUtility(40.0, 1.0))
                for k in range(4)]
        result = solve_onion(jobs, 4,
                             budget_deadline=time.perf_counter() + 60.0)
        assert len(result.targets) == 4

    def test_planner_time_budget_validation(self):
        planner = RushPlanner(capacity=4)
        with pytest.raises(ConfigurationError):
            planner.plan(planner_jobs(), time_budget=0.0)

    def test_planner_tiny_budget_raises(self):
        planner = RushPlanner(capacity=4)
        with pytest.raises(SolverBudgetError):
            planner.plan(planner_jobs(6), time_budget=1e-12)

    def test_planner_generous_budget_matches_unbudgeted(self):
        planner = RushPlanner(capacity=4)
        budgeted = planner.plan(planner_jobs(), time_budget=60.0)
        free = RushPlanner(capacity=4).plan(planner_jobs())
        assert budgeted.to_dict() == free.to_dict()


class TestRushSchedulerDegradation:
    def _run(self, scheduler, n_jobs=3, **kw):
        specs = [spec(job_id=f"j{k}", arrival=k) for k in range(n_jobs)]
        return run_simulation(specs, 2, scheduler, max_slots=2000, **kw)

    def test_clean_run_never_degrades(self):
        # Regression: a clean, unbudgeted run must not touch the ladder
        # (an earlier draft shadowed the onion budget deadline with the
        # peeling loop's slot deadline and degraded every round).
        scheduler = RushScheduler()
        result = self._run(scheduler)
        assert result.fallbacks == {}
        assert scheduler.degradation.total_fallbacks == 0
        assert result.completed_count == 3

    def test_forced_depth_one_lands_on_cold_exact(self):
        scheduler = RushScheduler()
        sim = ClusterSimulator(2, scheduler, seed=0)
        sim.submit(spec())
        scheduler.inject_solver_fault(1)
        sim.step()
        assert scheduler.degradation.counts.get("cold_exact", 0) == 1
        assert scheduler.last_plan is not None
        assert scheduler.last_plan.stats.fallback == "cold_exact"

    def test_forced_depth_two_reuses_last_good(self):
        scheduler = RushScheduler()
        sim = ClusterSimulator(2, scheduler, seed=0)
        sim.submit(spec(durations=(4, 4, 4)))
        sim.step()  # healthy round builds a last-good plan
        good = scheduler.last_plan
        assert good is not None
        scheduler.inject_solver_fault(2)
        for _ in range(20):  # next round fires when a container frees
            sim.step()
            if scheduler.degradation.counts:
                break
        assert scheduler.degradation.counts.get("last_good", 0) == 1
        assert scheduler.last_plan is good

    def test_forced_depth_three_hits_greedy_floor(self):
        scheduler = RushScheduler()
        sim = ClusterSimulator(2, scheduler, seed=0)
        sim.submit(spec(durations=(4, 4, 4)))
        sim.step()
        scheduler.inject_solver_fault(3)
        for _ in range(20):  # next round fires when a container frees
            sim.step()
            if scheduler.degradation.counts:
                break
        assert scheduler.degradation.counts.get("greedy_edf", 0) == 1
        assert scheduler.last_plan is None
        # the cluster stayed live: the freed container was still granted
        assert sim.job("j").running_count > 0

    def test_degradation_recorded_in_fault_log(self):
        scheduler = RushScheduler()
        sim = ClusterSimulator(2, scheduler, seed=0)
        sim.submit(spec())
        scheduler.inject_solver_fault(1)
        sim.step()
        kinds = sim.fault_log.counts_by_kind()
        assert kinds.get("degradation:cold_exact", 0) == 1
        event = [e for e in sim.fault_log
                 if e.kind == "degradation:cold_exact"][0]
        assert event.target == "planner"
        assert any("injected solver fault" in err
                   for err in event.detail["errors"])

    def test_tiny_budget_run_survives_and_records(self):
        scheduler = RushScheduler(plan_time_budget=1e-12)
        result = self._run(scheduler)
        assert result.completed_count == 3
        assert result.fallback_count > 0
        assert set(result.fallbacks) <= {"cold_exact", "last_good",
                                         "greedy_edf"}

    def test_greedy_floor_matches_edf_order(self):
        # With the ladder forced to the floor, RUSH's grants collapse to
        # EDF's for that scheduling round.
        specs = [spec(job_id=f"j{k}", arrival=0, budget=20.0 + k)
                 for k in range(3)]
        scheduler = RushScheduler()
        sim = ClusterSimulator(1, scheduler, seed=0)
        for s in specs:
            sim.submit(s)
        scheduler.inject_solver_fault(3)
        sim.step()
        granted = [j.job_id for j in sim.active_jobs if j.running_count > 0]
        edf = EdfScheduler()
        sim2 = ClusterSimulator(1, edf, seed=0)
        for s in specs:
            sim2.submit(spec(job_id=s.job_id, arrival=0, budget=s.budget))
        sim2.step()
        granted2 = [j.job_id for j in sim2.active_jobs
                    if j.running_count > 0]
        assert granted == granted2

    def test_solver_budget_injector_exercises_ladder_in_sim(self):
        scheduler = RushScheduler()
        specs = [spec(job_id=f"j{k}", arrival=k, durations=(3, 3))
                 for k in range(3)]
        result = run_simulation(
            specs, 2, scheduler, max_slots=2000,
            faults=FaultPlan([SolverBudgetInjector(rate=0.5, depth=1)],
                             seed=3))
        assert result.fault_count("solver_budget") > 0
        assert result.fallbacks.get("cold_exact", 0) > 0
        assert result.completed_count == 3

    def test_profile_reports_fallbacks(self):
        scheduler = RushScheduler()
        sim = ClusterSimulator(2, scheduler, seed=0)
        sim.submit(spec())
        scheduler.inject_solver_fault(1)
        sim.step()
        assert scheduler.profile()["fallbacks"] == 1
