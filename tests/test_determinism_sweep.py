"""Seed-swept cold ≡ incremental equivalence, with and without faults.

The incremental planning engine's headline contract is that it is
*bit-identical* to the stateless cold planner — same robust demands,
targets, grants and therefore the same simulated schedule.  The
hypothesis suite in ``test_incremental.py`` fuzzes the planner in
isolation; this module sweeps the contract end-to-end across many seeds
(it replaces the old single-seed ``rng(3)`` warm-start spot check):

* **planner level** — for each seed, a cold :class:`RushPlanner` and a
  warm-started :class:`IncrementalPlanner` replan of the same snapshot
  produce equal plans;
* **simulator level** — for each (seed, faults) point, a full
  simulation with ``RushScheduler(incremental=True)`` equals one with
  ``incremental=False``, fault events included, comparing the entire
  ``SimulationResult.to_dict()`` minus the wall-clock profiling field.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    IncrementalPlanner,
    PlannerJob,
    RushPlanner,
    RushScheduler,
    SigmoidUtility,
    run_simulation,
)
from repro.estimation import DemandEstimate, Pmf
from repro.faults import default_chaos_plan
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

PLANNER_SEEDS = list(range(20))
SIM_SEEDS = list(range(0, 40, 2))

SWEEP_CONFIG = WorkloadConfig(n_jobs=6, capacity=4, mean_interarrival=120.0,
                              budget_ratio=1.5, size_gb_range=(0.5, 1.0),
                              time_scale=0.25)


def random_jobs(seed: int, n: int = 12):
    """The old spot check's job generator, now swept over seeds."""
    rng = np.random.default_rng(seed)
    return [
        PlannerJob(f"j{i}", SigmoidUtility(float(rng.uniform(100, 900)),
                                           float(rng.integers(1, 6))),
                   DemandEstimate(
                       Pmf.from_gaussian(float(rng.uniform(20, 80)), 8.0,
                                         tau_max=300),
                       bin_width=1.0, container_runtime=5.0,
                       sample_count=4),
                   elapsed=float(rng.uniform(0, 30)))
        for i in range(n)]


def plans_equal(a, b) -> bool:
    if set(a.jobs) != set(b.jobs):
        return False
    for job_id, pa in a.jobs.items():
        pb = b.jobs[job_id]
        if (pa.robust_demand, pa.reference_demand, pa.target_completion,
                pa.planned_completion, pa.predicted_utility, pa.layer) != \
           (pb.robust_demand, pb.reference_demand, pb.target_completion,
                pb.planned_completion, pb.predicted_utility, pb.layer):
            return False
    return a.next_slot_allocation() == b.next_slot_allocation()


def schedule_dict(result):
    """``to_dict()`` minus the only legitimately run-dependent field."""
    data = result.to_dict()
    data.pop("planner_seconds", None)
    return data


# ---------------------------------------------------------------------------
# Planner level: warm-started replan ≡ cold plan, 20 seeds
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", PLANNER_SEEDS)
def test_warm_replan_equals_cold_plan(seed):
    jobs = random_jobs(seed)
    cold_plan = RushPlanner(16, tolerance=0.05).plan(jobs)
    warm = IncrementalPlanner(RushPlanner(16, tolerance=0.05),
                              warm_start=True)
    warm.plan(jobs)                       # seeds hints
    replan = warm.plan(jobs)              # unchanged snapshot
    assert replan.stats.warm_start
    assert plans_equal(replan, cold_plan)


@pytest.mark.parametrize("seed", PLANNER_SEEDS)
def test_incremental_equals_cold_after_churn(seed):
    """Perturb one job between plans; the next plan still matches cold."""
    rng = np.random.default_rng(seed + 1000)
    jobs = random_jobs(seed)
    inc = IncrementalPlanner(RushPlanner(16, tolerance=0.05))
    inc.plan(jobs)
    victim = int(rng.integers(0, len(jobs)))
    jobs[victim] = PlannerJob(
        jobs[victim].job_id, jobs[victim].utility,
        DemandEstimate(
            Pmf.from_gaussian(float(rng.uniform(20, 80)), 8.0, tau_max=300),
            bin_width=1.0, container_runtime=5.0, sample_count=5),
        elapsed=jobs[victim].elapsed)
    assert plans_equal(inc.plan(jobs),
                       RushPlanner(16, tolerance=0.05).plan(jobs))


# ---------------------------------------------------------------------------
# Simulator level: full runs, faults on/off
# ---------------------------------------------------------------------------

@pytest.mark.slow
@pytest.mark.parametrize("faulted", [False, True],
                         ids=["faults-off", "faults-on"])
@pytest.mark.parametrize("seed", SIM_SEEDS)
def test_simulated_schedule_identical_cold_vs_incremental(seed, faulted):
    specs = WorkloadGenerator(SWEEP_CONFIG, seed=seed).generate()
    results = []
    for incremental in (True, False):
        faults = default_chaos_plan(seed=seed) if faulted else None
        results.append(run_simulation(
            specs, 4, RushScheduler(incremental=incremental),
            seed=seed, max_slots=20_000, faults=faults))
    assert schedule_dict(results[0]) == schedule_dict(results[1])
    if faulted:
        assert results[0].fault_events == results[1].fault_events
