"""Tests for templates, the workload generator and the trace format."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.cluster import JobSpec
from repro.utility import ConstantUtility, SigmoidUtility
from repro.workload import (
    PUMA_TEMPLATES,
    WorkloadConfig,
    WorkloadGenerator,
    generate_workload,
    load_trace,
    save_trace,
    template_by_name,
)
from repro.workload.templates import JobTemplate


class TestTemplates:
    def test_eight_templates(self):
        assert len(PUMA_TEMPLATES) == 8
        names = {t.name for t in PUMA_TEMPLATES}
        assert "word-count" in names and "terasort" in names

    def test_lookup(self):
        assert template_by_name("self-join").name == "self-join"
        with pytest.raises(ConfigurationError):
            template_by_name("bogus")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JobTemplate("x", tasks_per_gb=0, mean_runtime=10, std_runtime=1)
        with pytest.raises(ConfigurationError):
            JobTemplate("x", tasks_per_gb=1, mean_runtime=-1, std_runtime=1)

    def test_sample_tasks_scale_with_size(self, rng):
        template = template_by_name("word-count")
        small = template.sample_tasks(1.0, rng)
        large = template.sample_tasks(10.0, rng)
        assert len(large) > len(small)
        assert all(d >= 1 for d in small + large)

    def test_sample_tasks_bad_size(self, rng):
        with pytest.raises(ConfigurationError):
            template_by_name("word-count").sample_tasks(0.0, rng)

    def test_benchmark_runtime_is_lpt_makespan(self):
        template = PUMA_TEMPLATES[0]
        # LPT on 2 machines for [5, 4, 3, 3]: loads {5+3, 4+3} -> 8
        assert template.benchmark_runtime([5, 4, 3, 3], 2) == 8

    def test_benchmark_single_container(self):
        template = PUMA_TEMPLATES[0]
        assert template.benchmark_runtime([5, 4], 1) == 9

    def test_benchmark_more_containers_never_slower(self):
        template = PUMA_TEMPLATES[0]
        tasks = [7, 6, 5, 4, 3, 2, 1]
        runtimes = [template.benchmark_runtime(tasks, c) for c in (1, 2, 4, 8)]
        assert runtimes == sorted(runtimes, reverse=True)


class TestWorkloadConfig:
    def test_defaults_match_paper(self):
        cfg = WorkloadConfig()
        assert cfg.n_jobs == 100
        assert cfg.capacity == 48
        assert cfg.mean_interarrival == 130.0
        assert cfg.sensitivity_mix == (0.2, 0.6, 0.2)
        assert cfg.size_gb_range == (1.0, 10.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(n_jobs=0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(sensitivity_mix=(0.5, 0.5, 0.5))
        with pytest.raises(ConfigurationError):
            WorkloadConfig(size_gb_range=(5.0, 1.0))
        with pytest.raises(ConfigurationError):
            WorkloadConfig(budget_ratio=0.0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(time_scale=0.0)


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = generate_workload(seed=7)
        b = generate_workload(seed=7)
        assert [s.job_id for s in a] == [s.job_id for s in b]
        assert [s.task_durations for s in a] == [s.task_durations for s in b]
        c = generate_workload(seed=8)
        assert [s.task_durations for s in a] != [s.task_durations for s in c]

    def test_job_count_and_ids_unique(self):
        specs = generate_workload(WorkloadConfig(n_jobs=25), seed=1)
        assert len(specs) == 25
        assert len({s.job_id for s in specs}) == 25

    def test_arrivals_non_decreasing(self):
        specs = generate_workload(seed=3)
        arrivals = [s.arrival for s in specs]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0

    def test_sensitivity_mix_roughly_holds(self):
        specs = generate_workload(WorkloadConfig(n_jobs=400), seed=5)
        frac = {
            k: sum(1 for s in specs if s.sensitivity == k) / len(specs)
            for k in ("critical", "sensitive", "insensitive")
        }
        assert frac["critical"] == pytest.approx(0.2, abs=0.06)
        assert frac["sensitive"] == pytest.approx(0.6, abs=0.07)
        assert frac["insensitive"] == pytest.approx(0.2, abs=0.06)

    def test_utility_classes_by_sensitivity(self):
        specs = generate_workload(WorkloadConfig(n_jobs=60), seed=2)
        for s in specs:
            if s.sensitivity == "insensitive":
                assert isinstance(s.utility, ConstantUtility)
            else:
                assert isinstance(s.utility, SigmoidUtility)
        critical_betas = {s.utility.beta for s in specs
                          if s.sensitivity == "critical"}
        sensitive_betas = {s.utility.beta for s in specs
                           if s.sensitivity == "sensitive"}
        if critical_betas and sensitive_betas:
            assert min(critical_betas) > max(sensitive_betas)

    def test_budget_is_ratio_of_benchmark(self):
        cfg = WorkloadConfig(n_jobs=30, budget_ratio=1.5)
        for s in generate_workload(cfg, seed=4):
            assert s.budget == pytest.approx(1.5 * s.benchmark_runtime)

    def test_priorities_in_range(self):
        specs = generate_workload(WorkloadConfig(n_jobs=50), seed=6)
        assert all(1 <= s.priority <= 5 for s in specs)
        assert all(float(s.priority).is_integer() for s in specs)

    def test_time_scale_shrinks_durations(self):
        full = generate_workload(WorkloadConfig(n_jobs=20), seed=9)
        tiny = generate_workload(WorkloadConfig(n_jobs=20, time_scale=0.25),
                                 seed=9)
        mean_full = np.mean([np.mean(s.task_durations) for s in full])
        mean_tiny = np.mean([np.mean(s.task_durations) for s in tiny])
        assert mean_tiny < 0.35 * mean_full

    def test_prior_runtime_is_template_nominal(self):
        cfg = WorkloadConfig(n_jobs=10)
        for s in generate_workload(cfg, seed=11):
            assert s.prior_runtime == template_by_name(s.template).mean_runtime

    def test_failure_prob_propagates(self):
        cfg = WorkloadConfig(n_jobs=10, failure_prob=0.2)
        assert all(s.failure_prob == 0.2
                   for s in generate_workload(cfg, seed=12))


class TestArrivalProcesses:
    def _arrivals(self, process, n=300, seed=21, **kw):
        cfg = WorkloadConfig(n_jobs=n, mean_interarrival=100.0,
                             arrival_process=process, **kw)
        return [s.arrival for s in generate_workload(cfg, seed=seed)]

    def test_unknown_process_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(arrival_process="fractal")

    def test_bad_burst_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(burst_factor=0.5)

    @pytest.mark.parametrize("process", ["poisson", "uniform", "bursty"])
    def test_mean_rate_approximately_preserved(self, process):
        arrivals = self._arrivals(process)
        gaps = np.diff(arrivals)
        assert np.mean(gaps) == pytest.approx(100.0, rel=0.25)

    def test_uniform_gaps_bounded(self):
        gaps = np.diff(self._arrivals("uniform"))
        assert gaps.min() >= 49  # 0.5 * mean, minus rounding
        assert gaps.max() <= 151

    def test_bursty_is_burstier_than_poisson(self):
        """The bursty process has a higher gap coefficient of variation."""
        poisson_gaps = np.diff(self._arrivals("poisson"))
        bursty_gaps = np.diff(self._arrivals("bursty"))
        cv = lambda g: np.std(g) / np.mean(g)  # noqa: E731
        assert cv(bursty_gaps) > cv(poisson_gaps)


class TestTrace:
    def test_roundtrip(self, tmp_path):
        specs = generate_workload(WorkloadConfig(n_jobs=15), seed=13)
        path = tmp_path / "workload.jsonl"
        save_trace(specs, path)
        loaded = load_trace(path)
        assert len(loaded) == len(specs)
        for a, b in zip(specs, loaded):
            assert a.job_id == b.job_id
            assert a.arrival == b.arrival
            assert a.task_durations == b.task_durations
            assert a.budget == pytest.approx(b.budget)
            assert a.sensitivity == b.sensitivity
            assert type(a.utility) is type(b.utility)
            for t in (0, 50, 500):
                assert a.utility.value(t) == pytest.approx(b.utility.value(t))

    def test_infinite_budget_roundtrip(self, tmp_path):
        s = JobSpec(job_id="j", arrival=0, task_durations=(1,),
                    utility=ConstantUtility(1.0))
        path = tmp_path / "one.jsonl"
        save_trace([s], path)
        loaded = load_trace(path)[0]
        assert math.isinf(loaded.budget)
        assert math.isnan(loaded.benchmark_runtime)
        assert loaded.prior_runtime is None

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"format": "other"}\n')
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_rejects_bad_record(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"format": "rush-trace", "version": 1}\n{"job_id": "x"}\n')
        with pytest.raises(ConfigurationError):
            load_trace(path)
