"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimation.pmf import Pmf


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def gaussian_pmf() -> Pmf:
    """A moderately wide discretized Gaussian reference distribution."""
    return Pmf.from_gaussian(mean=100.0, std=15.0, tau_max=200)


@pytest.fixture
def skewed_pmf() -> Pmf:
    """A right-skewed reference with a straggler tail."""
    probs = np.zeros(301)
    probs[40:61] = 4.0
    probs[61:301] = np.geomspace(1.0, 0.001, 240)
    return Pmf(probs, normalize=True)
