"""Shared fixtures for the test suite."""

from __future__ import annotations

import asyncio
import gc

import numpy as np
import pytest

from repro import obs
from repro.estimation.pmf import Pmf
from repro.lint.framework import RULE_REGISTRY


@pytest.fixture(autouse=True)
def _isolate_global_registries():
    """Keep process-wide registries from leaking between tests.

    Two mutable module-level registries exist: the rushlint rule
    registry (tests register throwaway rules to exercise the framework)
    and the repro.obs instrument slots (tests enable tracers/metrics to
    exercise instrumentation).  A test that forgets to clean up would
    silently change every later test's behaviour — e.g. a leaked live
    MetricsRegistry makes 'disabled-path' assertions measure the enabled
    path.  Snapshot before, restore after, unconditionally.
    """
    rules_before = dict(RULE_REGISTRY)
    yield
    RULE_REGISTRY.clear()
    RULE_REGISTRY.update(rules_before)
    obs.reset()


@pytest.fixture(autouse=True)
def _no_asyncio_leaks():
    """Audit and contain asyncio event-loop leakage between tests.

    The service suite drives real sockets through ``asyncio.run``, which
    creates and closes a fresh loop per call — the clean pattern.  The
    failure mode this fixture guards against is a test (or library code)
    that installs a loop via ``new_event_loop``/``set_event_loop`` and
    forgets to close it: the loop, its self-pipe FDs and any lingering
    transports would then leak into every later test.  Any such stray
    loop is closed and deregistered here; the ``filterwarnings``
    configuration in pyproject.toml turns the matching asyncio
    ResourceWarnings into hard errors, so an unclosed transport or loop
    fails the test that leaked it instead of degrading the process.
    """
    yield
    policy = asyncio.get_event_loop_policy()
    stray = getattr(getattr(policy, "_local", None), "_loop", None)
    if stray is not None and not stray.is_closed():
        stray.close()
    asyncio.set_event_loop(None)
    # Collect now so unclosed-resource warnings fire inside the test
    # that owns them, not at an arbitrary later GC point.
    gc.collect()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def gaussian_pmf() -> Pmf:
    """A moderately wide discretized Gaussian reference distribution."""
    return Pmf.from_gaussian(mean=100.0, std=15.0, tau_max=200)


@pytest.fixture
def skewed_pmf() -> Pmf:
    """A right-skewed reference with a straggler tail."""
    probs = np.zeros(301)
    probs[40:61] = 4.0
    probs[61:301] = np.geomspace(1.0, 0.001, 240)
    return Pmf(probs, normalize=True)
