"""Edge-path tests: code paths the mainline suites do not reach."""

from __future__ import annotations

import math

import pytest

from repro import (
    EwmaGaussianEstimator,
    GaussianEstimator,
    JobSpec,
    PlannerJob,
    RushPlanner,
    RushScheduler,
    run_simulation,
)
from repro.core.onion import OnionJob, solve_onion
from repro.estimation import DemandEstimate, MeanTimeEstimator, Pmf
from repro.utility import LinearUtility, PiecewiseUtility


class TestOnionWithCustomUtilityClass:
    """PiecewiseUtility is not in the vectorized deadline bank: the
    scalar fallback path must produce the same kind of answers."""

    def test_piecewise_job_scheduled(self):
        jobs = [
            OnionJob("tiered", 10.0,
                     PiecewiseUtility([(0, 10), (10, 10), (20, 0)])),
            OnionJob("linear", 10.0, LinearUtility(15.0, 2.0)),
        ]
        result = solve_onion(jobs, 2, tolerance=1e-3, horizon=40)
        assert result.targets["tiered"].target_completion <= 20
        assert result.targets["tiered"].utility_value > 0

    def test_mixed_bank_and_scalar_consistent(self):
        """A piecewise utility equivalent to a linear one behaves alike."""
        linear = LinearUtility(10.0, 0.0, beta=1.0)
        piecewise = PiecewiseUtility([(0.0, 10.0), (10.0, 0.0)])
        r1 = solve_onion([OnionJob("x", 8.0, linear)], 2,
                         tolerance=1e-4, horizon=20)
        r2 = solve_onion([OnionJob("x", 8.0, piecewise)], 2,
                         tolerance=1e-4, horizon=20)
        assert (r1.targets["x"].target_completion
                == r2.targets["x"].target_completion)


class TestCoarseBinWidthThroughPlanner:
    def test_eta_scales_with_bin_width(self):
        pmf = Pmf.from_gaussian(100, 10, tau_max=200)
        fine = DemandEstimate(pmf=pmf, bin_width=1.0, container_runtime=5.0,
                              sample_count=10)
        coarse = DemandEstimate(pmf=pmf, bin_width=7.0, container_runtime=5.0,
                                sample_count=10)
        planner = RushPlanner(16, theta=0.9, delta=0.5)
        eta_fine, _, _ = planner.robust_demand(fine)
        eta_coarse, _, _ = planner.robust_demand(coarse)
        assert eta_coarse == pytest.approx(7.0 * eta_fine)

    def test_huge_demand_is_coarsened_automatically(self):
        de = MeanTimeEstimator(prior_runtime=1.0)
        estimate = de.estimate(pending_tasks=10_000_000)
        assert estimate.bin_width > 1.0
        planner = RushPlanner(1000, theta=0.9, delta=0.3)
        eta, _, _ = planner.robust_demand(estimate)
        assert eta == pytest.approx(1e7, rel=0.01)


class TestAlternativeEstimatorsInScheduler:
    def test_ewma_estimator_factory(self):
        specs = [JobSpec(job_id="j", arrival=0, task_durations=(3,) * 6,
                         utility=LinearUtility(40.0, 1.0), budget=40.0,
                         prior_runtime=3.0)]
        scheduler = RushScheduler(
            estimator_factory=lambda prior: EwmaGaussianEstimator(
                alpha=0.2, prior_mean=prior))
        result = run_simulation(specs, 2, scheduler)
        assert result.completed_count == 1

    def test_default_prior_used_when_spec_has_none(self):
        specs = [JobSpec(job_id="j", arrival=0, task_durations=(3, 3),
                         utility=LinearUtility(40.0, 1.0), budget=40.0)]
        captured = []

        def factory(prior):
            captured.append(prior)
            return GaussianEstimator(prior_mean=prior)

        run_simulation(specs, 1,
                       RushScheduler(estimator_factory=factory,
                                     default_prior_runtime=42.0))
        assert captured == [42.0]


class TestPlannerEdgeInputs:
    def test_all_jobs_zero_pending(self):
        de = MeanTimeEstimator(prior_runtime=5.0)
        planner = RushPlanner(4)
        plan = planner.plan([
            PlannerJob("done-a", LinearUtility(10, 1), de.estimate(0)),
            PlannerJob("done-b", LinearUtility(20, 1), de.estimate(0),
                       elapsed=5.0),
        ])
        assert plan.jobs["done-a"].target_completion == 0
        assert plan.jobs["done-b"].robust_demand == 0.0
        assert plan.next_slot_allocation() == {}

    def test_extra_demand_increases_eta(self):
        de = MeanTimeEstimator(prior_runtime=5.0)
        planner = RushPlanner(4, delta=0.0)
        base = planner.plan([PlannerJob("j", LinearUtility(100, 1),
                                        de.estimate(4))])
        loaded = planner.plan([PlannerJob("j", LinearUtility(100, 1),
                                          de.estimate(4), extra_demand=15.0)])
        assert loaded.jobs["j"].robust_demand == pytest.approx(
            base.jobs["j"].robust_demand + 15.0)

    def test_negative_extra_demand_clamped(self):
        de = MeanTimeEstimator(prior_runtime=5.0)
        planner = RushPlanner(4, delta=0.0)
        plan = planner.plan([PlannerJob("j", LinearUtility(100, 1),
                                        de.estimate(4), extra_demand=-99.0)])
        assert plan.jobs["j"].robust_demand >= 0.0
