"""Tests for the Capacity Scheduler baseline."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.cluster import JobSpec, run_simulation
from repro.schedulers import CapacityScheduler
from repro.utility import LinearUtility


def spec(job_id, sensitivity="sensitive", arrival=0, durations=(4, 4),
         **kw):
    return JobSpec(job_id=job_id, arrival=arrival,
                   task_durations=tuple(durations),
                   utility=LinearUtility(100.0, 1.0), budget=100.0,
                   sensitivity=sensitivity, **kw)


class TestValidation:
    def test_shares_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            CapacityScheduler({"a": 0.5, "b": 0.6})

    def test_shares_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CapacityScheduler({"a": 1.2, "b": -0.2})

    def test_empty_queues_rejected(self):
        with pytest.raises(ConfigurationError):
            CapacityScheduler({})

    def test_unknown_queue_mapping(self):
        scheduler = CapacityScheduler({"only": 1.0},
                                      queue_for=lambda s: "other")
        with pytest.raises(ConfigurationError):
            run_simulation([spec("a")], 2, scheduler)


class TestSharing:
    def test_guarantees_respected_under_contention(self):
        """With both queues saturated, shares split capacity ~50/50."""
        scheduler = CapacityScheduler({"critical": 0.5, "sensitive": 0.5})
        specs = [
            spec("crit", sensitivity="critical", durations=(4,) * 8),
            spec("sens", sensitivity="sensitive", durations=(4,) * 8),
        ]
        result = run_simulation(specs, 4, scheduler)
        runtimes = {r.job_id: r.runtime for r in result.records}
        # each job gets ~2 containers: 8 tasks x 4 slots / 2 = 16 slots
        assert runtimes["crit"] == pytest.approx(16.0, abs=4.0)
        assert runtimes["sens"] == pytest.approx(16.0, abs=4.0)

    def test_idle_capacity_is_borrowed(self):
        """A lone queue may exceed its guarantee when others are empty."""
        scheduler = CapacityScheduler({"critical": 0.25, "sensitive": 0.75})
        specs = [spec("crit", sensitivity="critical", durations=(4,) * 8)]
        result = run_simulation(specs, 4, scheduler)
        # 8 tasks x 4 slots on all 4 containers = 8 slots, not 32.
        assert result.records[0].runtime == 8.0

    def test_fifo_within_queue(self):
        scheduler = CapacityScheduler({"sensitive": 1.0})
        specs = [
            spec("late", arrival=1, durations=(3, 3)),
            spec("early", arrival=0, durations=(3, 3)),
        ]
        result = run_simulation(specs, 1, scheduler)
        by_id = {r.job_id: r.arrival + r.runtime for r in result.records}
        assert by_id["early"] < by_id["late"]

    def test_default_shares_cover_sensitivities(self):
        specs = [
            spec("a", sensitivity="critical"),
            spec("b", sensitivity="sensitive"),
            spec("c", sensitivity="insensitive"),
        ]
        result = run_simulation(specs, 3, CapacityScheduler())
        assert result.completed_count == 3
