"""Tests for the scheduling policies (FIFO, EDF, Fair, RRH, RUSH)."""

from __future__ import annotations

import math

import pytest

from repro.errors import SimulationError
from repro.cluster import ClusterSimulator, JobSpec, run_simulation
from repro.schedulers import (
    EdfScheduler,
    FairScheduler,
    FifoScheduler,
    RrhScheduler,
    RushScheduler,
)
from repro.schedulers.base import Scheduler
from repro.utility import ConstantUtility, LinearUtility, SigmoidUtility


def spec(job_id, arrival=0, durations=(4, 4), budget=50.0, utility=None,
         priority=1.0, **kw):
    return JobSpec(job_id=job_id, arrival=arrival,
                   task_durations=tuple(durations),
                   utility=utility or LinearUtility(budget, priority),
                   budget=budget, priority=priority, **kw)


class TestBaseScheduler:
    def test_unbound_access_rejected(self):
        with pytest.raises(SimulationError):
            FifoScheduler().sim

    def test_name_in_result(self):
        result = run_simulation([spec("a", durations=(1,))], 1, EdfScheduler())
        assert result.scheduler_name == "EDF"


class TestFifo:
    def test_serves_in_arrival_order(self):
        specs = [
            spec("late", arrival=1, durations=(2, 2)),
            spec("early", arrival=0, durations=(2, 2)),
        ]
        result = run_simulation(specs, 1, FifoScheduler())
        by_id = {r.job_id: r for r in result.records}
        assert (by_id["early"].arrival + by_id["early"].runtime
                <= by_id["late"].arrival + by_id["late"].runtime)

    def test_head_of_line_blocking(self):
        """A long head job starves a short one behind it — the FIFO flaw."""
        specs = [
            spec("whale", arrival=0, durations=(30,) * 2, budget=70.0),
            spec("minnow", arrival=1, durations=(2,), budget=5.0),
        ]
        result = run_simulation(specs, 1, FifoScheduler())
        minnow = next(r for r in result.records if r.job_id == "minnow")
        assert minnow.latency > 0  # blocked behind the whale


class TestEdf:
    def test_prefers_earliest_deadline(self):
        specs = [
            spec("loose", arrival=0, durations=(3, 3), budget=100.0),
            spec("tight", arrival=0, durations=(3, 3), budget=10.0),
        ]
        result = run_simulation(specs, 1, EdfScheduler())
        by_id = {r.job_id: r for r in result.records}
        assert by_id["tight"].runtime < by_id["loose"].runtime

    def test_infinite_budget_sorts_last(self):
        specs = [
            JobSpec(job_id="nobudget", arrival=0, task_durations=(3,),
                    utility=ConstantUtility(1.0)),
            spec("budgeted", arrival=0, durations=(3,), budget=5.0),
        ]
        result = run_simulation(specs, 1, EdfScheduler())
        by_id = {r.job_id: r for r in result.records}
        assert by_id["budgeted"].runtime <= 3.0


class TestFair:
    def test_equal_shares(self):
        """With two identical jobs and two containers, each gets one."""
        specs = [spec("a", durations=(4, 4)), spec("b", durations=(4, 4))]
        result = run_simulation(specs, 2, FairScheduler(weighted=False))
        runtimes = sorted(r.runtime for r in result.records)
        assert runtimes[0] == runtimes[1] == 8.0

    def test_priority_weighting(self):
        specs = [
            spec("heavy", durations=(4,) * 4, priority=4.0),
            spec("light", durations=(4,) * 4, priority=1.0),
        ]
        result = run_simulation(specs, 2, FairScheduler(weighted=True))
        by_id = {r.job_id: r for r in result.records}
        assert by_id["heavy"].runtime <= by_id["light"].runtime


class TestRrh:
    def test_validation(self):
        with pytest.raises(ValueError):
            RrhScheduler(default_runtime=0)

    def test_favors_critical_jobs(self):
        """The steep-sigmoid job near its budget wins the container."""
        critical = SigmoidUtility(budget=12, priority=2, beta=2.0)
        sensitive = SigmoidUtility(budget=100, priority=2, beta=0.02)
        specs = [
            spec("critical", durations=(4, 4), utility=critical, budget=12.0,
                 prior_runtime=4.0),
            spec("sensitive", durations=(4, 4), utility=sensitive, budget=100.0,
                 prior_runtime=4.0),
        ]
        result = run_simulation(specs, 1, RrhScheduler())
        by_id = {r.job_id: r for r in result.records}
        assert by_id["critical"].runtime < by_id["sensitive"].runtime

    def test_falls_back_when_no_gain(self):
        """Jobs whose utility cannot improve still get served (EDF order)."""
        specs = [
            spec("flat", durations=(2, 2), utility=ConstantUtility(1.0),
                 budget=10.0),
        ]
        result = run_simulation(specs, 1, RrhScheduler())
        assert result.completed_count == 1


class TestRush:
    def test_runs_to_completion(self):
        specs = [
            spec("a", durations=(3, 3, 3), budget=20.0, prior_runtime=3.0),
            spec("b", arrival=2, durations=(3, 3), budget=15.0,
                 prior_runtime=3.0),
        ]
        result = run_simulation(specs, 2, RushScheduler())
        assert result.completed_count == 2
        assert result.planner_seconds > 0.0

    def test_defers_insensitive_jobs_under_pressure(self):
        """RUSH delays the constant-utility job to save the sensitive one."""
        sensitive = SigmoidUtility(budget=10, priority=3, beta=1.0)
        specs = [
            spec("flat", arrival=0, durations=(4,) * 4,
                 utility=ConstantUtility(3.0), budget=100.0, prior_runtime=4.0),
            spec("urgent", arrival=0, durations=(4, 4), utility=sensitive,
                 budget=10.0, prior_runtime=4.0),
        ]
        result = run_simulation(specs, 2, RushScheduler(delta=0.1))
        by_id = {r.job_id: r for r in result.records}
        assert by_id["urgent"].runtime <= 10.0
        assert by_id["urgent"].utility_value > 1.0

    def test_plan_cached_within_epoch(self):
        specs = [spec("a", durations=(2,) * 6, prior_runtime=2.0)]
        scheduler = RushScheduler()
        result = run_simulation(specs, 3, scheduler)
        # one plan per (slot, completions) epoch, far fewer than decisions
        assert scheduler.plans_computed <= result.scheduling_decisions

    def test_impossible_jobs_surface(self):
        """The red-row diagnostic lists jobs with zero attainable utility."""
        specs = [
            spec("doomed", durations=(50,) * 4, budget=10.0,
                 utility=LinearUtility(10, 1), prior_runtime=50.0),
        ]
        scheduler = RushScheduler(delta=0.2)
        run_simulation(specs, 1, scheduler, max_slots=5)
        assert "doomed" in scheduler.impossible_jobs()

    def test_non_work_conserving_mode(self):
        specs = [spec("a", durations=(2, 2), prior_runtime=2.0)]
        scheduler = RushScheduler(work_conserving=False)
        result = run_simulation(specs, 4, scheduler, max_slots=100)
        assert result.completed_count == 1

    def test_custom_estimator_factory(self):
        from repro.estimation import MeanTimeEstimator

        factory_calls = []

        def factory(prior):
            factory_calls.append(prior)
            return MeanTimeEstimator(prior_runtime=prior)

        specs = [spec("a", durations=(2, 2), prior_runtime=7.0)]
        run_simulation(specs, 1, RushScheduler(estimator_factory=factory))
        assert factory_calls == [7.0]


class TestSchedulerContract:
    def test_selecting_complete_job_raises(self):
        class Bad(Scheduler):
            name = "bad"

            def select_job(self):
                return "ghost"

        sim = ClusterSimulator(1, Bad())
        sim.submit(spec("real", durations=(1,)))
        with pytest.raises(SimulationError):
            sim.run()

    def test_idling_scheduler_stalls_but_terminates(self):
        class Lazy(Scheduler):
            name = "lazy"

            def select_job(self):
                return None

        result = run_simulation([spec("a", durations=(1,))], 1, Lazy(),
                                max_slots=10)
        assert result.completed_count == 0
        assert result.slots_simulated == 10
