"""Tests for tasks, jobs, containers and the cluster simulator."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.cluster import (
    ClusterSimulator,
    Container,
    JobSpec,
    SimJob,
    Task,
    TaskState,
    run_simulation,
)
from repro.cluster.metrics import JobRecord, lexicographic_compare
from repro.schedulers import FifoScheduler
from repro.utility import ConstantUtility, LinearUtility


def spec(job_id="j", arrival=0, durations=(3, 3), budget=50.0, **kw):
    return JobSpec(job_id=job_id, arrival=arrival,
                   task_durations=tuple(durations),
                   utility=kw.pop("utility", LinearUtility(budget, 1.0)),
                   budget=budget, **kw)


class TestTask:
    def test_lifecycle(self):
        task = Task("t", "j", duration=2)
        assert task.state is TaskState.PENDING
        task.launch(5)
        assert task.state is TaskState.RUNNING
        assert not task.advance(5)
        assert task.advance(6)
        assert task.state is TaskState.COMPLETED
        assert task.start_time == 5
        assert task.finish_time == 7

    def test_double_launch_rejected(self):
        task = Task("t", "j", duration=1)
        task.launch(0)
        with pytest.raises(SimulationError):
            task.launch(1)

    def test_advance_without_launch_rejected(self):
        with pytest.raises(SimulationError):
            Task("t", "j", duration=1).advance(0)

    def test_zero_duration_rejected(self):
        with pytest.raises(SimulationError):
            Task("t", "j", duration=0)


class TestContainer:
    def test_assign_and_finish(self):
        c = Container(0)
        task = Task("t", "j", duration=1)
        c.assign(task, 0)
        assert not c.is_free
        finished = c.advance(0)
        assert finished is task
        assert c.is_free

    def test_double_assign_rejected(self):
        c = Container(0)
        c.assign(Task("t1", "j", duration=5), 0)
        with pytest.raises(SimulationError):
            c.assign(Task("t2", "j", duration=5), 0)

    def test_advance_idle_is_noop(self):
        assert Container(0).advance(0) is None


class TestJobSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            spec(arrival=-1)
        with pytest.raises(ConfigurationError):
            spec(durations=())
        with pytest.raises(ConfigurationError):
            spec(durations=(0,))
        with pytest.raises(ConfigurationError):
            spec(sensitivity="urgent")

    def test_total_work_and_deadline(self):
        s = spec(durations=(2, 3, 4), budget=10.0, arrival=5)
        assert s.total_work == 9
        assert s.deadline == 15.0


class TestSimJob:
    def test_bookkeeping(self):
        job = SimJob(spec(durations=(1, 2)))
        assert job.pending_count == 2
        task = job.next_pending()
        task.launch(0)
        job.note_launched()
        assert job.pending_count == 1 and job.running_count == 1
        task.advance(0)
        assert job.note_completed(task)
        assert job.completed_count == 1
        assert not job.is_complete
        assert job.runtime_samples() == [1.0]

    def test_completion_time(self):
        job = SimJob(spec(durations=(2,)))
        assert job.completion_time is None
        task = job.next_pending()
        task.launch(3)
        job.note_launched()
        task.advance(3), task.advance(4)
        job.note_completed(task)
        assert job.is_complete
        assert job.completion_time == 5

    def test_elapsed(self):
        job = SimJob(spec(arrival=10))
        assert job.elapsed(15) == 5
        assert job.elapsed(5) == 0


class TestSimulator:
    def test_validation(self):
        with pytest.raises(SimulationError):
            ClusterSimulator(0, FifoScheduler())

    def test_duplicate_submission(self):
        sim = ClusterSimulator(2, FifoScheduler())
        sim.submit(spec())
        with pytest.raises(SimulationError):
            sim.submit(spec())

    def test_late_submission_rejected(self):
        sim = ClusterSimulator(1, FifoScheduler())
        sim.submit(spec(job_id="a", durations=(1,)))
        sim.run()
        with pytest.raises(SimulationError):
            sim.submit(spec(job_id="b", arrival=0))

    def test_scheduler_rebind_rejected(self):
        scheduler = FifoScheduler()
        ClusterSimulator(1, scheduler)
        with pytest.raises(SimulationError):
            ClusterSimulator(1, scheduler)

    def test_single_job_timing(self):
        # 4 tasks x 3 slots on 2 containers: two waves -> 6 slots.
        result = run_simulation([spec(durations=(3, 3, 3, 3))], 2,
                                FifoScheduler())
        record = result.records[0]
        assert record.runtime == 6.0
        assert record.completed
        assert result.slots_simulated == 6

    def test_arrival_offsets_runtime(self):
        result = run_simulation([spec(arrival=10, durations=(2,))], 1,
                                FifoScheduler())
        record = result.records[0]
        assert record.runtime == 2.0
        assert result.slots_simulated == 12

    def test_capacity_is_respected(self):
        class Spy(FifoScheduler):
            max_busy = 0

            def select_job(self):
                busy = sum(1 for c in self.sim.containers if not c.is_free)
                Spy.max_busy = max(Spy.max_busy, busy)
                return super().select_job()

        specs = [spec(job_id=f"j{i}", durations=(2,) * 6) for i in range(4)]
        run_simulation(specs, 3, Spy())
        assert Spy.max_busy <= 3

    def test_task_continuity(self):
        """A launched task occupies one container contiguously."""
        result = run_simulation([spec(durations=(5, 5))], 1, FifoScheduler())
        assert result.records[0].runtime == 10.0  # strictly serial, no overlap

    def test_busy_slot_accounting(self):
        result = run_simulation([spec(durations=(3, 3))], 2, FifoScheduler())
        assert result.busy_container_slots == 6
        assert result.utilization == pytest.approx(1.0)

    def test_censoring_at_max_slots(self):
        result = run_simulation([spec(durations=(100,), budget=10.0)], 1,
                                FifoScheduler(), max_slots=20)
        record = result.records[0]
        assert not record.completed
        assert record.runtime == 20.0
        assert result.completed_count == 0

    def test_work_conservation(self):
        """Busy container slots equal total ground-truth work when done."""
        specs = [spec(job_id=f"j{i}", arrival=i, durations=(2, 3, 1))
                 for i in range(5)]
        result = run_simulation(specs, 2, FifoScheduler())
        assert result.busy_container_slots == sum(s.total_work for s in specs)


class TestJobRecord:
    def test_latency_and_utility(self):
        s = spec(durations=(4,), budget=10.0, arrival=2)
        record = JobRecord.from_spec(s, completion=8, horizon=100)
        assert record.runtime == 6.0
        assert record.latency == -4.0
        assert record.utility_value == pytest.approx(s.utility.value(6.0))

    def test_infinite_budget_latency_nan(self):
        s = JobSpec(job_id="j", arrival=0, task_durations=(1,),
                    utility=ConstantUtility(1.0))
        record = JobRecord.from_spec(s, completion=5, horizon=10)
        assert math.isnan(record.latency)


class TestLexicographicCompare:
    def test_orderings(self):
        assert lexicographic_compare([1, 2], [1, 2]) == 0
        assert lexicographic_compare([2, 1], [1, 2]) == 0  # sorted first
        assert lexicographic_compare([1, 3], [1, 2]) == 1
        assert lexicographic_compare([0, 9], [1, 2]) == -1

    def test_prefers_higher_minimum(self):
        rush = [0.5, 0.6, 5.0]
        fifo = [0.0, 2.0, 9.0]
        assert lexicographic_compare(rush, fifo) == 1
