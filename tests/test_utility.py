"""Tests for the utility classes of Section IV (and extensions)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utility import (
    ConstantUtility,
    LinearUtility,
    PiecewiseUtility,
    SigmoidUtility,
    StepUtility,
    UtilityFunction,
)

times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
budgets = st.floats(min_value=0.1, max_value=1e4)
priorities = st.floats(min_value=0.1, max_value=100.0)
betas = st.floats(min_value=0.001, max_value=10.0)


def all_utilities():
    """Strategy producing one instance of every shipped utility class."""
    linear = st.builds(LinearUtility, budget=budgets, priority=priorities, beta=betas)
    sigmoid = st.builds(SigmoidUtility, budget=budgets, priority=priorities, beta=betas)
    constant = st.builds(ConstantUtility, priority=priorities)
    step = st.builds(StepUtility, budget=budgets, priority=priorities)
    return st.one_of(linear, sigmoid, constant, step)


class TestLinear:
    def test_values(self):
        u = LinearUtility(budget=100, priority=5, beta=0.5)
        assert u.value(0) == pytest.approx(55.0)
        assert u.value(100) == pytest.approx(5.0)
        assert u.value(110) == pytest.approx(0.0)
        assert u.value(1000) == 0.0

    def test_zero_utility_time(self):
        u = LinearUtility(budget=100, priority=5, beta=0.5)
        assert u.zero_utility_time() == pytest.approx(110.0)
        assert u.value(u.zero_utility_time()) == pytest.approx(0.0)

    def test_deadline(self):
        u = LinearUtility(budget=100, priority=5, beta=0.5)
        assert u.deadline_for(5.0) == pytest.approx(100.0)
        assert u.deadline_for(55.0) == pytest.approx(0.0)
        assert u.deadline_for(0.0) == math.inf
        assert u.deadline_for(100.0) == -math.inf

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinearUtility(budget=-1, priority=1)
        with pytest.raises(ConfigurationError):
            LinearUtility(budget=1, priority=1, beta=0)

    def test_equality_and_hash(self):
        a = LinearUtility(10, 2, 0.5)
        assert a == LinearUtility(10, 2, 0.5)
        assert a != LinearUtility(11, 2, 0.5)
        assert hash(a) == hash(LinearUtility(10, 2, 0.5))


class TestSigmoid:
    def test_half_priority_at_budget(self):
        u = SigmoidUtility(budget=100, priority=4, beta=0.5)
        assert u.value(100) == pytest.approx(2.0)

    def test_non_increasing_direction(self):
        """Regression for the paper's sign typo: late must be worse."""
        u = SigmoidUtility(budget=100, priority=4, beta=0.5)
        assert u.value(50) > u.value(100) > u.value(150)

    def test_steepness(self):
        gentle = SigmoidUtility(budget=100, priority=4, beta=0.05)
        steep = SigmoidUtility(budget=100, priority=4, beta=2.0)
        # the critical job collapses right after the budget
        assert steep.value(110) < 1e-8
        assert gentle.value(110) > 1.0

    def test_overflow_guarded(self):
        u = SigmoidUtility(budget=10, priority=1, beta=5.0)
        assert u.value(1e9) == 0.0

    def test_deadline_roundtrip(self):
        u = SigmoidUtility(budget=100, priority=4, beta=0.5)
        for level in (0.1, 1.0, 2.0, 3.9):
            t = u.deadline_for(level)
            assert u.value(t) == pytest.approx(level, rel=1e-9)

    def test_deadline_extremes(self):
        u = SigmoidUtility(budget=100, priority=4, beta=0.5)
        assert u.deadline_for(0.0) == math.inf
        assert u.deadline_for(4.1) == -math.inf
        # with beta * budget = 50 the ceiling rounds to the priority itself
        assert u.deadline_for(u.max_value()) == pytest.approx(0.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SigmoidUtility(budget=10, priority=0, beta=1)
        with pytest.raises(ConfigurationError):
            SigmoidUtility(budget=10, priority=1, beta=-1)


class TestConstant:
    def test_flat(self):
        u = ConstantUtility(3.0)
        assert u.value(0) == u.value(1e9) == 3.0
        assert u.max_value() == u.min_value() == 3.0

    def test_deadline(self):
        u = ConstantUtility(3.0)
        assert u.deadline_for(3.0) == math.inf
        assert u.deadline_for(3.01) == -math.inf

    def test_zero_priority_allowed(self):
        assert ConstantUtility(0.0).value(5) == 0.0


class TestStep:
    def test_values(self):
        u = StepUtility(budget=50, priority=2)
        assert u.value(50) == 2.0
        assert u.value(50.01) == 0.0

    def test_deadline(self):
        u = StepUtility(budget=50, priority=2)
        assert u.deadline_for(1.0) == 50.0
        assert u.deadline_for(0.0) == math.inf
        assert u.deadline_for(2.5) == -math.inf


class TestPiecewise:
    def test_interpolation(self):
        u = PiecewiseUtility([(0, 10), (10, 10), (20, 0)])
        assert u.value(5) == pytest.approx(10.0)
        assert u.value(15) == pytest.approx(5.0)
        assert u.value(25) == 0.0

    def test_deadline(self):
        u = PiecewiseUtility([(0, 10), (10, 10), (20, 0)])
        assert u.deadline_for(5.0) == pytest.approx(15.0)
        assert u.deadline_for(10.0) == pytest.approx(10.0)
        assert u.deadline_for(0.0) == math.inf
        assert u.deadline_for(11.0) == -math.inf

    def test_flat_tail_deadline(self):
        u = PiecewiseUtility([(0, 10), (20, 2)])
        # level exactly equal to the tail value holds forever
        assert u.deadline_for(2.0) == math.inf
        assert u.deadline_for(2.1) == pytest.approx(19.75)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PiecewiseUtility([])
        with pytest.raises(ConfigurationError):
            PiecewiseUtility([(0, 1), (0, 2)])
        with pytest.raises(ConfigurationError):
            PiecewiseUtility([(0, 1), (10, 2)])  # increasing
        with pytest.raises(ConfigurationError):
            PiecewiseUtility([(-1, 1)])


class TestGenericProperties:
    @settings(max_examples=100)
    @given(all_utilities(), times, times)
    def test_non_increasing(self, utility, t1, t2):
        lo, hi = sorted((t1, t2))
        assert utility.value(lo) >= utility.value(hi) - 1e-9

    @settings(max_examples=100)
    @given(all_utilities(), times)
    def test_bounded_by_extremes(self, utility, t):
        v = utility.value(t)
        assert utility.min_value() - 1e-9 <= v <= utility.max_value() + 1e-9

    @settings(max_examples=100)
    @given(all_utilities(), st.floats(min_value=0.001, max_value=1.0))
    def test_deadline_achieves_level(self, utility, frac):
        """value(deadline_for(L)) >= L whenever the deadline is finite."""
        level = utility.min_value() + frac * (
            utility.max_value() - utility.min_value())
        if level <= utility.min_value():
            return
        deadline = utility.deadline_for(level)
        if math.isinf(deadline):
            return
        assert utility.value(deadline) >= level - 1e-6 * max(1.0, level)

    @settings(max_examples=100)
    @given(all_utilities(), st.floats(min_value=0.001, max_value=1.0))
    def test_deadline_is_latest(self, utility, frac):
        """Slightly past the deadline the level is no longer attained."""
        level = utility.min_value() + frac * (
            utility.max_value() - utility.min_value())
        deadline = utility.deadline_for(level)
        if not math.isfinite(deadline):
            return
        late = deadline + max(1e-6, abs(deadline)) * 1e-5 + 1e-6
        assert utility.value(late) <= level + 1e-6 * max(1.0, level)


class TestDefaultBisectionFallback:
    class _Quadratic(UtilityFunction):
        """A custom monotone utility exercising the base-class bisection."""

        def value(self, completion_time: float) -> float:
            return 100.0 / (1.0 + completion_time) ** 2

        def max_value(self) -> float:
            return 100.0

        def min_value(self) -> float:
            return 0.0

    def test_fallback_deadline(self):
        u = self._Quadratic()
        deadline = u.deadline_for(25.0)
        assert deadline == pytest.approx(1.0, rel=1e-5)
        assert u.deadline_for(0.0) == math.inf
        assert u.deadline_for(101.0) == -math.inf
