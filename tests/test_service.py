"""In-process integration tests for the scheduler service.

Everything runs against real sockets on the loopback interface — the
daemon under test is the exact stack ``rush serve`` boots (stdlib
asyncio HTTP, manual-clock mode so the tests own time) — but inside a
single ``asyncio.run`` per test, so the suite stays fast and leak-free.

Covered here:

* the submit → query → stream → cancel lifecycle over HTTP;
* malformed requests rejected with *typed* error bodies (a bare 500
  always means a daemon bug, and nothing in this suite produces one);
* concurrent multi-tenant submission with quota enforcement (429) and
  quota release on completion;
* ``/metrics`` serving the live Prometheus registry;
* snapshot → kill → restore → resume with an identical decision stream
  (engine-level and through the HTTP endpoint), plus tamper detection;
* the daemon-side chaos case: an injected ``SolverBudgetError`` surfaces
  as a degradation-ladder fallback in the job-status payload — a served
  answer, never an error response.
"""

from __future__ import annotations

import asyncio
import json
from contextlib import asynccontextmanager

import pytest

from repro import obs
from repro.errors import (BadRequestError, ConfigurationError, JobStateError,
                          TenantQuotaError, UnknownJobError)
from repro.service import (RealTimeClock, ServiceClient, ServiceConfig,
                           ServiceDaemon, ServiceEngine, ServiceRequestError,
                           TenantSpec, restore_engine, take_snapshot)
from repro.service.smoke import run_service_smoke
from repro.service.snapshot import SnapshotError

JOB = {"task_durations": [2, 2], "budget": 12}


def _config(**kw) -> ServiceConfig:
    kw.setdefault("capacity", 2)
    kw.setdefault("policy", "fifo")
    return ServiceConfig(**kw)


@asynccontextmanager
async def serving(config=None, **daemon_kw):
    """Boot a manual-clock daemon on an ephemeral port; always stop it."""
    engine = ServiceEngine(config or _config())
    daemon = ServiceDaemon(engine, **daemon_kw)
    await daemon.start()
    try:
        yield daemon, ServiceClient("127.0.0.1", daemon.port)
    finally:
        await daemon.stop()


# ---------------------------------------------------------------------------
# Lifecycle over HTTP
# ---------------------------------------------------------------------------


def test_submit_query_cancel_lifecycle():
    async def scenario():
        async with serving() as (_daemon, client):
            health = await client.healthz()
            assert health == {"ok": True, "slot": 0}

            a = await client.submit(dict(JOB, job_id="a"))
            assert (a["state"], a["tenant"]) == ("accepted", "default")
            b = await client.submit(dict(JOB, job_id="b"))
            assert b["state"] == "accepted"

            await client.tick()
            a = await client.job("a")
            assert a["state"] == "running"
            assert a["running_tasks"] == 2  # fifo: both containers to a

            cancelled = await client.cancel("b")
            assert cancelled["state"] == "cancelling"
            await client.tick()
            assert (await client.job("b"))["state"] == "cancelled"

            await client.tick(5)
            a = await client.job("a")
            assert a["state"] == "completed"
            assert a["completion"] == 2 and a["runtime"] == 2.0

            jobs = await client.jobs()
            assert [(j["job_id"], j["state"]) for j in jobs] == [
                ("a", "completed"), ("b", "cancelled")]
            status = await client.status()
            assert status["completed_jobs"] == 1
            assert status["cancelled_jobs"] == 1
            assert status["service"]["mode"] == "manual"

    asyncio.run(scenario())


def test_queued_job_waits_for_its_arrival_slot():
    async def scenario():
        async with serving() as (_daemon, client):
            job = await client.submit(dict(JOB, job_id="later", arrival=3))
            assert job["state"] == "accepted"
            await client.tick()
            assert (await client.job("later"))["state"] == "queued"
            await client.tick(3)
            assert (await client.job("later"))["state"] == "running"

    asyncio.run(scenario())


def test_stream_reports_each_slot():
    async def scenario():
        async with serving() as (_daemon, client):
            await client.submit(dict(JOB, job_id="s"))

            async def ticker():
                await asyncio.sleep(0.05)  # let the stream subscribe
                for _ in range(4):
                    await client.tick()

            payloads, _ = await asyncio.gather(client.stream(4), ticker())
            assert [p["slot"] for p in payloads] == [0, 1, 2, 3]
            assert payloads[1]["active_jobs"] == 1
            assert payloads[-1]["completed_jobs"] == 1

    asyncio.run(scenario())


def test_metrics_endpoint_serves_live_registry():
    async def scenario():
        async with serving() as (_daemon, client):
            text = await client.metrics_text()
            assert "rush_service_jobs_submitted_total" not in text
            await client.submit(dict(JOB, job_id="m"))
            await client.tick(6)
            text = await client.metrics_text()
            assert 'rush_service_jobs_submitted_total{tenant="default"} 1' \
                in text
            assert "rush_sim_tasks_completed_total" in text

    obs.enable(trace=False, metrics=True, ledger=False)
    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Typed request rejection — never a 500
# ---------------------------------------------------------------------------


def test_malformed_requests_get_typed_errors():
    async def scenario():
        async with serving() as (_daemon, client):
            # raw non-JSON body
            status, _ctype, raw = await client.request(
                "POST", "/jobs", payload=None)
            assert status == 400  # missing body
            cases = [
                ("POST", "/jobs", {"task_durations": []},
                 400, "bad-request"),
                ("POST", "/jobs", {"task_durations": [1], "nope": 1},
                 400, "bad-request"),
                ("POST", "/jobs", {"task_durations": [0]},
                 400, "bad-request"),
                ("POST", "/jobs", {"task_durations": [1], "tenant": "ghost"},
                 400, "bad-request"),
                ("POST", "/jobs", {"task_durations": [1], "arrival": -1},
                 400, "bad-request"),
                ("GET", "/jobs/ghost", None, 404, "unknown-job"),
                ("DELETE", "/jobs/ghost", None, 404, "unknown-job"),
                ("POST", "/tick", {"slots": "three"}, 400, "bad-request"),
                ("POST", "/tick", {"slots": 0}, 400, "bad-request"),
                ("POST", "/chaos/solver-fault", {"depth": 1},
                 400, "bad-request"),  # chaos not enabled on this daemon
                ("GET", "/no/such/route", None, 404, "not-found"),
                ("PUT", "/jobs", {"task_durations": [1]}, 404, "not-found"),
            ]
            for method, path, payload, want_status, want_code in cases:
                with pytest.raises(ServiceRequestError) as err:
                    await client.request_json(method, path, payload)
                assert (err.value.status, err.value.code) == \
                    (want_status, want_code), (method, path, payload)

            # duplicate id → 409, cancel-completed → 409
            await client.submit(dict(JOB, job_id="dup"))
            with pytest.raises(ServiceRequestError) as err:
                await client.submit(dict(JOB, job_id="dup"))
            assert (err.value.status, err.value.code) == (409, "job-state")
            await client.tick(6)
            with pytest.raises(ServiceRequestError) as err:
                await client.cancel("dup")
            assert (err.value.status, err.value.code) == (409, "job-state")

            # malformed JSON over the raw transport
            status, _ctype, raw = await client.request(
                "POST", "/jobs", payload=None)
            assert status == 400
            body = json.loads(raw)
            assert body["error"]["code"] == "bad-request"

    asyncio.run(scenario())


def test_engine_rejects_past_arrivals_and_ticks():
    engine = ServiceEngine(_config())
    engine.tick(3)
    with pytest.raises(BadRequestError):
        engine.submit(dict(JOB, arrival=1))
    with pytest.raises(BadRequestError):
        engine.tick(0)
    with pytest.raises(UnknownJobError):
        engine.job_status("nobody")
    auto = engine.submit(dict(JOB))
    assert auto["job_id"] == "default-1"  # auto-assigned, tenant-prefixed


# ---------------------------------------------------------------------------
# Multi-tenancy: concurrent submission, quotas, shares
# ---------------------------------------------------------------------------

TENANTS = (TenantSpec("alpha", share=0.5, max_active=2),
           TenantSpec("beta", share=0.5))


def test_concurrent_tenants_and_quota_enforcement():
    async def scenario():
        async with serving(_config(tenants=TENANTS)) as (_daemon, client):
            payloads = [dict(JOB, job_id=f"a{k}", tenant="alpha")
                        for k in range(4)]
            payloads += [dict(JOB, job_id=f"b{k}", tenant="beta")
                         for k in range(4)]

            async def try_submit(payload):
                try:
                    return await client.submit(payload)
                except ServiceRequestError as exc:
                    return exc

            results = await asyncio.gather(*[try_submit(p) for p in payloads])
            quota_hits = [r for r in results
                          if isinstance(r, ServiceRequestError)]
            accepted = [r for r in results if isinstance(r, dict)]
            # alpha's max_active=2 rejects 2 of its 4; beta is unlimited.
            assert len(quota_hits) == 2
            assert all((e.status, e.code) == (429, "quota-exceeded")
                       for e in quota_hits)
            assert len(accepted) == 6

            tenants = await client.tenants()
            assert tenants["alpha"]["live_jobs"] == 2
            assert tenants["beta"]["live_jobs"] == 4
            assert tenants["alpha"]["share"] == 0.5

            # completions release quota: alpha can submit again
            await client.tick(20)
            assert (await client.tenants())["alpha"]["live_jobs"] == 0
            retry = await client.submit(dict(JOB, tenant="alpha"))
            assert retry["tenant"] == "alpha"

    asyncio.run(scenario())


def test_capacity_policy_uses_tenant_shares_as_queues():
    engine = ServiceEngine(ServiceConfig(
        capacity=4, policy="capacity", tenants=TENANTS))
    engine.submit(dict(JOB, job_id="a0", tenant="alpha"))
    engine.submit(dict(JOB, job_id="b0", tenant="beta"))
    engine.tick()
    a0, b0 = engine.job_status("a0"), engine.job_status("b0")
    # with equal shares and 4 containers, each tenant's job runs 2 tasks
    assert a0["running_tasks"] == 2 and b0["running_tasks"] == 2
    engine.tick(6)
    assert engine.job_status("a0")["state"] == "completed"
    assert engine.job_status("b0")["state"] == "completed"
    assert engine.config.to_dict()["policy"] == "capacity"


def test_capacity_policy_rejects_scheduler_options():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        ServiceConfig(capacity=2, policy="capacity",
                      scheduler_options={"theta": 0.9})
    with pytest.raises(ConfigurationError):
        ServiceConfig(capacity=2, policy="definitely-not-a-policy")


def test_engine_typed_errors_without_http():
    engine = ServiceEngine(_config(tenants=TENANTS))
    engine.submit(dict(JOB, job_id="a0", tenant="alpha"))
    engine.submit(dict(JOB, job_id="a1", tenant="alpha"))
    with pytest.raises(TenantQuotaError):
        engine.submit(dict(JOB, job_id="a2", tenant="alpha"))
    with pytest.raises(BadRequestError):
        engine.submit(dict(JOB, tenant="ghost"))
    assert engine.cancel("a0")["state"] == "cancelling"
    # cancelling again while the cancel is in flight is idempotent...
    assert engine.cancel("a0")["state"] == "cancelling"
    engine.tick()
    # ...but cancelling a *cancelled* job is a state error
    with pytest.raises(JobStateError):
        engine.cancel("a0")


# ---------------------------------------------------------------------------
# Snapshot → kill → restore → resume
# ---------------------------------------------------------------------------


def _rush_config() -> ServiceConfig:
    return ServiceConfig(capacity=2, policy="rush", seed=3,
                         scheduler_options={"theta": 0.9, "delta": 0.7})


def _busy_engine() -> ServiceEngine:
    engine = ServiceEngine(_rush_config())
    engine.submit({"task_durations": [3, 2, 2], "budget": 14, "job_id": "a"})
    engine.submit({"task_durations": [4], "budget": 9, "job_id": "b"})
    engine.tick(2)
    engine.submit({"task_durations": [2, 2], "budget": 8, "job_id": "c"})
    engine.tick(1)
    engine.cancel("b")
    engine.tick(1)
    return engine


def test_snapshot_restore_resumes_identical_decision_stream():
    original = _busy_engine()
    snap = take_snapshot(original)

    # the original keeps running to completion: the reference stream
    original.tick(30)
    reference_decisions = original.decision_stream()
    reference_records = original.records_digest()

    # "kill": the restored engine is a brand-new object, rebuilt purely
    # from the snapshot dict (round-tripped through JSON like the file).
    revived = restore_engine(json.loads(json.dumps(snap)))
    assert revived.slot == snap["slot"]
    assert revived.decisions_digest() == snap["decisions_digest"]
    revived.tick(30)
    assert revived.decision_stream() == reference_decisions
    assert revived.records_digest() == reference_records
    assert [e["kind"] for e in revived.journal] == \
        [e["kind"] for e in original.journal]


def test_snapshot_restore_over_http():
    async def scenario():
        async with serving(_rush_config()) as (_daemon, client):
            await client.submit(
                {"task_durations": [3, 2], "budget": 10, "job_id": "x"})
            await client.tick(2)
            snap = await client.snapshot()
            reference = await client.request_json("GET", "/digest")
            return snap, reference

    snap, reference = asyncio.run(scenario())
    # the daemon above is gone; boot a fresh one from the snapshot
    revived = restore_engine(snap)

    async def resumed():
        daemon = ServiceDaemon(revived)
        await daemon.start()
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            digest = await client.request_json("GET", "/digest")
            assert digest["decisions"] == reference["decisions"]
            assert digest["slot"] == reference["slot"]
            # the revived daemon keeps serving: same job, same state
            assert (await client.job("x"))["state"] == "running"
        finally:
            await daemon.stop()

    asyncio.run(resumed())


def test_snapshot_tampering_is_detected():
    snap = take_snapshot(_busy_engine())
    tampered = json.loads(json.dumps(snap))
    for entry in tampered["journal"]:
        if entry["kind"] == "submit":
            entry["spec"]["task_durations"] = [9, 9, 9]
    with pytest.raises(SnapshotError):
        restore_engine(tampered)
    with pytest.raises(SnapshotError):
        restore_engine({"format": "something-else"})
    with pytest.raises(SnapshotError):
        restore_engine(dict(snap, version=99))


# ---------------------------------------------------------------------------
# Chaos: solver faults degrade the answer, not the request
# ---------------------------------------------------------------------------


def test_injected_solver_fault_reports_degradation_not_500():
    async def scenario():
        async with serving(_rush_config(), chaos=True) as (_daemon, client):
            await client.submit(
                {"task_durations": [3, 3, 2], "budget": 14, "job_id": "j"})
            await client.tick(1)  # a healthy plan first
            before = await client.job("j")
            assert before["degradation"]["last_fallback"] is None

            armed = await client.chaos_solver_fault(depth=1)
            assert armed == {"armed": True, "depth": 1, "slot": 1}
            # the next planning round runs at slot 3, when the first two
            # tasks free their containers and the third needs a grant —
            # that is the solve the armed fault sabotages
            await client.tick(3)

            after = await client.job("j")  # a 200, not an error
            ladder = after["degradation"]
            assert sum(ladder["fallbacks"].values()) >= 1
            assert ladder["last_fallback"] in (
                "cold_exact", "last_good", "greedy_edf")
            assert ladder["last_fallback_slot"] == 3
            # and the cluster kept scheduling through the fault
            status = await client.status()
            assert status["running_tasks"] >= 1

            with pytest.raises(ServiceRequestError) as err:
                await client.chaos_solver_fault(depth=7)
            assert err.value.status == 400

    asyncio.run(scenario())


def test_chaos_depth_validation_and_policy_guard():
    engine = ServiceEngine(_config())  # fifo: nothing to sabotage
    with pytest.raises(BadRequestError):
        engine.inject_solver_fault(1)
    rush = ServiceEngine(_rush_config())
    with pytest.raises(BadRequestError):
        rush.inject_solver_fault(True)  # bool is not a depth


# ---------------------------------------------------------------------------
# Clean shutdown: no lingering loops, transports or tasks
# ---------------------------------------------------------------------------


def test_daemon_stop_closes_listener_and_streams():
    async def scenario():
        engine = ServiceEngine(_config())
        daemon = ServiceDaemon(engine)
        await daemon.start()
        client = ServiceClient("127.0.0.1", daemon.port)
        port = daemon.port

        stream_task = asyncio.create_task(client.stream(100))
        await asyncio.sleep(0.05)  # stream subscribes
        assert len(daemon._subscribers) == 1
        await daemon.stop()
        # the open stream was terminated by the stop sentinel, not left
        # hanging — and the port no longer accepts connections
        payloads = await asyncio.wait_for(stream_task, timeout=2)
        assert len(payloads) >= 1
        with pytest.raises(OSError):
            await asyncio.open_connection("127.0.0.1", port)

    asyncio.run(scenario())
    # after asyncio.run returns nothing may linger (the conftest audit
    # fixture and the ResourceWarning filters enforce the rest)


def test_daemon_rejects_clock_the_engine_does_not_share():
    """A pacing clock the engine doesn't tick on is a wiring bug.

    The slot loop would await boundaries on a clock that never
    advances, degenerating into a catch-up spin, while the engine's own
    slots stand still — so the constructor refuses the divergent pair
    outright instead of serving a daemon whose time is broken.
    """
    engine = ServiceEngine(_config())
    try:
        with pytest.raises(ConfigurationError):
            ServiceDaemon(engine, clock=RealTimeClock(slot_seconds=0.05))
        shared = RealTimeClock(slot_seconds=0.05)
        paired = ServiceEngine(_config(), clock=shared)
        try:
            ServiceDaemon(paired, clock=shared)  # correct wiring: accepted
        finally:
            paired.close()
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# The CI equivalence battery (slow lane)
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_service_smoke_battery_matches_simulator_path():
    report = run_service_smoke(seed=0, fast=True)
    assert report["match"] is True
    assert report["jobs"] == 50
