"""Cross-module property tests: end-to-end invariants under fuzzing.

These tests wire several subsystems together and assert the structural
invariants the paper's correctness rests on — for arbitrary (hypothesis-
generated) inputs, not hand-picked examples:

* planner level: the robust demands and targets always satisfy Theorem
  2's staircase condition, the concrete container plan respects capacity
  and Theorem 3's completion bound, and planning is deterministic;
* simulator level: for every scheduling policy and random workloads
  (including failures), capacity is never exceeded, tasks run
  contiguously, work is conserved, and metrics are internally consistent.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CapacityScheduler,
    ConstantUtility,
    EdfScheduler,
    FairScheduler,
    FifoScheduler,
    JobSpec,
    LinearUtility,
    PlannerJob,
    RrhScheduler,
    RushPlanner,
    RushScheduler,
    SigmoidUtility,
    SpeculativeScheduler,
    run_simulation,
)
from repro.core.feasibility import staircase_feasible
from repro.cluster.task import TaskState
from repro.estimation import DemandEstimate, Pmf

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

utilities = st.one_of(
    st.builds(LinearUtility,
              budget=st.floats(min_value=1, max_value=500),
              priority=st.floats(min_value=0.1, max_value=10),
              beta=st.floats(min_value=0.01, max_value=2)),
    st.builds(SigmoidUtility,
              budget=st.floats(min_value=1, max_value=500),
              priority=st.floats(min_value=0.1, max_value=10),
              beta=st.floats(min_value=0.01, max_value=2)),
    st.builds(ConstantUtility, priority=st.floats(min_value=0.1, max_value=10)),
)


def estimates():
    return st.builds(
        lambda mean, std, runtime: DemandEstimate(
            pmf=Pmf.from_gaussian(mean, std, tau_max=int(mean + 6 * std) + 2),
            bin_width=1.0, container_runtime=runtime, sample_count=10),
        mean=st.floats(min_value=1, max_value=200),
        std=st.floats(min_value=0, max_value=30),
        runtime=st.floats(min_value=0.5, max_value=20))


planner_jobs = st.lists(
    st.builds(lambda u, e, elapsed: (u, e, elapsed),
              utilities, estimates(),
              st.floats(min_value=0, max_value=100)),
    min_size=1, max_size=6)


def job_specs(max_jobs: int = 6, failure: bool = False):
    def build(raw):
        specs = []
        arrival = 0
        for i, (durations, budget, fail) in enumerate(raw):
            arrival += i % 3
            specs.append(JobSpec(
                job_id=f"j{i}", arrival=arrival,
                task_durations=tuple(durations),
                utility=LinearUtility(budget, 1.0), budget=float(budget),
                prior_runtime=float(np.mean(durations)),
                failure_prob=fail if failure else 0.0))
        return specs

    raw = st.lists(
        st.tuples(st.lists(st.integers(min_value=1, max_value=12),
                           min_size=1, max_size=6),
                  st.integers(min_value=5, max_value=80),
                  st.floats(min_value=0.0, max_value=0.4)),
        min_size=1, max_size=max_jobs)
    return raw.map(build)


ALL_POLICIES = [FifoScheduler, EdfScheduler, FairScheduler,
                CapacityScheduler, RrhScheduler, RushScheduler,
                lambda: SpeculativeScheduler(FifoScheduler())]


# ---------------------------------------------------------------------------
# planner-level invariants
# ---------------------------------------------------------------------------

class TestPlannerInvariants:
    @settings(max_examples=30, deadline=None)
    @given(planner_jobs, st.integers(min_value=1, max_value=16),
           st.floats(min_value=0.5, max_value=0.99),
           st.floats(min_value=0.0, max_value=1.5))
    def test_plan_structural_invariants(self, raw, capacity, theta, delta):
        jobs = [PlannerJob(f"p{i}", u, e, elapsed=el)
                for i, (u, e, el) in enumerate(raw)]
        planner = RushPlanner(capacity, theta=theta, delta=delta,
                              tolerance=0.05)
        plan = planner.plan(jobs)

        # Every job decided, eta >= reference, targets within the horizon.
        assert set(plan.jobs) == {job.job_id for job in jobs}
        for decision in plan.jobs.values():
            assert decision.robust_demand >= decision.reference_demand - 1e-9
            assert 0 <= decision.target_completion <= plan.horizon

        # Theorem 2: the chosen targets satisfy the staircase condition.
        pairs = [(plan.jobs[j.job_id].target_completion,
                  plan.jobs[j.job_id].robust_demand) for j in jobs]
        assert staircase_feasible(pairs, capacity)

        # The concrete container plan never exceeds capacity.
        cp = plan.container_plan
        for t in np.linspace(0, max(cp.makespan, 1.0), 25):
            assert sum(cp.allocation_at(float(t)).values()) <= capacity

        # Theorem 3: with feasible targets, completion <= target + R.
        if not cp.overflowed:
            for job in jobs:
                decision = plan.jobs[job.job_id]
                assert cp.completion(job.job_id) <= (
                    decision.target_completion
                    + job.estimate.container_runtime + 1e-6)

    @settings(max_examples=15, deadline=None)
    @given(planner_jobs, st.integers(min_value=1, max_value=8))
    def test_plan_deterministic(self, raw, capacity):
        jobs = [PlannerJob(f"p{i}", u, e, elapsed=el)
                for i, (u, e, el) in enumerate(raw)]
        planner = RushPlanner(capacity, tolerance=0.05)
        p1, p2 = planner.plan(jobs), planner.plan(jobs)
        for job_id in p1.jobs:
            assert (p1.jobs[job_id].target_completion
                    == p2.jobs[job_id].target_completion)
            assert p1.jobs[job_id].robust_demand == \
                p2.jobs[job_id].robust_demand

    @settings(max_examples=20, deadline=None)
    @given(planner_jobs, st.integers(min_value=1, max_value=8),
           st.floats(min_value=0.0, max_value=0.5),
           st.floats(min_value=0.6, max_value=2.0))
    def test_robust_demand_monotone_in_delta(self, raw, capacity, d1, d2):
        jobs = [PlannerJob(f"p{i}", u, e, elapsed=el)
                for i, (u, e, el) in enumerate(raw)]
        lo = RushPlanner(capacity, delta=d1, tolerance=0.05).plan(jobs)
        hi = RushPlanner(capacity, delta=d2, tolerance=0.05).plan(jobs)
        for job_id in lo.jobs:
            assert hi.jobs[job_id].robust_demand >= \
                lo.jobs[job_id].robust_demand - 1e-9


# ---------------------------------------------------------------------------
# simulator-level invariants
# ---------------------------------------------------------------------------

def _check_simulation_invariants(specs, result, capacity):
    assert len(result.records) == len(specs)
    for record in result.records:
        assert record.runtime >= 0
        if record.completed:
            # runtime at least the critical path (longest single task,
            # ignoring failures, which only lengthen it).  A speculative
            # duplicate runs at the job's typical sample rate — modeling
            # the original landing on a slow node — so it can legally
            # beat the spec duration and the bound does not apply.
            spec = next(s for s in specs if s.job_id == record.job_id)
            # rushlint: disable=RL003 (exact zero sentinel: failure_prob
            # is the literal 0.0 the generator config passed through;
            # only exactly-zero disables injection)
            if (spec.failure_prob == 0.0
                    and result.speculative_launches == 0):
                assert record.runtime >= max(spec.task_durations)
    # capacity accounting: busy slots cannot exceed capacity * time
    assert result.busy_container_slots <= capacity * result.slots_simulated
    # without failures or speculation, work is conserved exactly
    total_work = sum(s.total_work for s in specs)
    if result.task_failures == 0 and result.speculative_launches == 0:
        if result.completed_count == len(specs):
            assert result.busy_container_slots == total_work


class TestSimulatorInvariants:
    @settings(max_examples=10, deadline=None)
    @given(job_specs(max_jobs=5), st.integers(min_value=1, max_value=5),
           st.sampled_from(ALL_POLICIES))
    def test_invariants_without_failures(self, specs, capacity, policy):
        result = run_simulation(specs, capacity, policy(), max_slots=20_000)
        assert result.completed_count == len(specs)
        _check_simulation_invariants(specs, result, capacity)

    @settings(max_examples=10, deadline=None)
    @given(job_specs(max_jobs=4, failure=True),
           st.integers(min_value=1, max_value=4),
           st.sampled_from([FifoScheduler, RushScheduler,
                            lambda: SpeculativeScheduler(EdfScheduler())]))
    def test_invariants_with_failures(self, specs, capacity, policy):
        result = run_simulation(specs, capacity, policy(),
                                max_slots=50_000, seed=3)
        assert result.completed_count == len(specs)
        _check_simulation_invariants(specs, result, capacity)

    @settings(max_examples=8, deadline=None)
    @given(job_specs(max_jobs=4), st.integers(min_value=1, max_value=4))
    def test_task_continuity(self, specs, capacity):
        """Every completed attempt ran contiguously for its duration."""
        from repro.cluster.simulator import ClusterSimulator

        sim = ClusterSimulator(capacity, FifoScheduler())
        for spec in specs:
            sim.submit(spec)
        sim.run(max_slots=20_000)
        for spec in specs:
            job = sim.job(spec.job_id)
            for task in job.tasks:
                if task.state is TaskState.COMPLETED:
                    assert task.finish_time - task.start_time == task.duration
