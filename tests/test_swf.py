"""SWF parser and mapping tests: happy path, fuzz, and negative paths.

Every malformed input must surface as a typed
:class:`~repro.errors.TraceFormatError` carrying the 1-based line number
— never a bare ``ValueError`` — so a corrupted archive fails loudly and
debuggably at ingestion.  The mapping tests pin the deterministic
SWF→JobSpec rules documented in ``docs/WORKLOADS.md``.
"""

from __future__ import annotations

import math
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.errors import ConfigurationError, TraceFormatError
from repro.workload.swf import (
    SWF_FIELD_COUNT,
    SwfMapConfig,
    load_swf_workload,
    parse_swf,
    parse_swf_text,
    rebase_arrivals,
    swf_to_specs,
)
from repro.workload.scenarios import bundled_swf_path

HEADER = "; Version: 2.2\n; MaxProcs: 8\n"

#: A valid 18-field record template; format() in the overrides.
_FIELDS = ("{job_number} {submit} {wait} {run} {alloc} {cpu} {mem} "
           "{req_procs} {req_time} {req_mem} {status} {user} {group} "
           "{executable} {queue} {partition} {preceding} {think}")
_DEFAULTS = dict(job_number=1, submit=0, wait=5, run=100, alloc=4,
                 cpu=-1, mem=-1, req_procs=4, req_time=120, req_mem=-1,
                 status=1, user=3, group=2, executable=7, queue=1,
                 partition=-1, preceding=-1, think=-1)


def record(**overrides) -> str:
    values = dict(_DEFAULTS)
    values.update(overrides)
    return _FIELDS.format(**values)


class TestParserHappyPath:
    def test_bundled_excerpt_parses(self):
        trace = parse_swf(bundled_swf_path())
        assert trace.version == "2.2"
        assert trace.max_procs == 240
        assert trace.unix_start_time == 1027839845
        assert len(trace.jobs) == 80
        assert sum(1 for j in trace.jobs if j.cancelled) == 1
        assert sum(1 for j in trace.jobs if j.failed) == 8
        assert all(j.line > 0 for j in trace.jobs)

    def test_minus_one_sentinels_preserved(self):
        trace = parse_swf_text(HEADER + record(mem=-1, req_mem=-1))
        job = trace.jobs[0]
        assert job.used_memory == -1
        assert job.requested_memory == -1

    def test_procs_falls_back_to_requested(self):
        trace = parse_swf_text(HEADER + record(alloc=-1, req_procs=16))
        assert trace.jobs[0].procs == 16

    def test_note_directives_concatenate(self):
        text = "; Note: first\n; Note: second\n" + record()
        trace = parse_swf_text(text)
        assert trace.directives["Note"] == "first\nsecond"

    def test_blank_comment_lines_between_records_tolerated(self):
        text = HEADER + record(job_number=1) + "\n;\n" + record(
            job_number=2, submit=10)
        trace = parse_swf_text(text)
        assert len(trace.jobs) == 2

    def test_parse_is_deterministic(self):
        one = parse_swf(bundled_swf_path())
        two = parse_swf(bundled_swf_path())
        assert one.jobs == two.jobs
        assert dict(one.directives) == dict(two.directives)

    def test_trace_path_is_relative_to_trace_root(self):
        # Absolute input path, portable (basename) stored path: error
        # strings and trace metadata feed digested artifacts that must
        # be byte-identical across checkouts.
        trace = parse_swf(bundled_swf_path())
        assert trace.path is not None
        assert not Path(trace.path).is_absolute()
        assert trace.path == Path(bundled_swf_path()).name

    def test_explicit_trace_root_yields_relative_subpath(self):
        bundled = Path(bundled_swf_path())
        trace = parse_swf(bundled, trace_root=bundled.parent.parent)
        assert trace.path == str(bundled.relative_to(bundled.parent.parent))
        assert not Path(trace.path).is_absolute()

    def test_unrelated_trace_root_falls_back_to_basename(self):
        trace = parse_swf(bundled_swf_path(),
                          trace_root="/nonexistent/elsewhere")
        assert trace.path == Path(bundled_swf_path()).name


class TestParserNegativePaths:
    """Each malformed input raises TraceFormatError with a line number."""

    def expect_error(self, text: str, *needles: str, line: int) -> None:
        with pytest.raises(TraceFormatError) as excinfo:
            parse_swf_text(text, path="bad.swf")
        err = excinfo.value
        assert isinstance(err, ConfigurationError)
        assert err.line == line
        assert err.path == "bad.swf"
        assert f"line {line}" in str(err)
        for needle in needles:
            assert needle in str(err)

    def test_truncated_record(self):
        short = " ".join(record().split()[: SWF_FIELD_COUNT - 1])
        self.expect_error(HEADER + short, "truncated", "17", line=3)

    def test_overlong_record(self):
        long = record() + " 99"
        self.expect_error(HEADER + long, "overlong", "19", line=3)

    def test_non_numeric_field(self):
        self.expect_error(HEADER + record(run="10m"), "non-numeric",
                          "run_time", line=3)

    def test_non_finite_field(self):
        self.expect_error(HEADER + record(run="inf"), "non-finite", line=3)

    def test_fractional_integer_field(self):
        self.expect_error(HEADER + record(job_number="1.5"), "fractional",
                          "job_number", line=3)

    def test_unknown_status_code(self):
        self.expect_error(HEADER + record(status=7), "status", "7", line=3)

    def test_negative_job_number(self):
        self.expect_error(HEADER + record(job_number=-2), "job_number",
                          line=3)

    def test_out_of_order_submit_times(self):
        text = (HEADER + record(job_number=1, submit=100) + "\n"
                + record(job_number=2, submit=50))
        self.expect_error(text, "out-of-order", line=4)

    def test_unknown_header_directive(self):
        self.expect_error("; Bogus: 1\n" + record(), "Bogus", line=1)

    def test_unparseable_header_comment(self):
        self.expect_error("; just some words\n" + record(),
                          "unparseable", line=1)

    def test_directive_after_first_record(self):
        text = record() + "\n; MaxProcs: 8"
        self.expect_error(text, "after the first job record", line=2)

    def test_lenient_mode_relaxes_exactly_the_layout_checks(self):
        text = ("; Bogus: 1\n; free text comment\n"
                + record(job_number=1, submit=100) + "\n"
                + record(job_number=2, submit=50))
        trace = parse_swf_text(text, strict=False)
        assert len(trace.jobs) == 2
        assert "Bogus" not in trace.directives

    def test_lenient_mode_still_rejects_malformed_records(self):
        with pytest.raises(TraceFormatError):
            parse_swf_text(record(run="oops"), strict=False)

    def test_error_without_position_when_path_omitted(self):
        with pytest.raises(TraceFormatError) as excinfo:
            parse_swf_text(record() + " 99")
        assert excinfo.value.path is None
        assert excinfo.value.line == 1

    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=200))
    def test_fuzz_never_raises_untyped_errors(self, text):
        """Arbitrary garbage parses or raises TraceFormatError — nothing else."""
        try:
            parse_swf_text(text)
        except TraceFormatError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.lists(
        st.floats(allow_nan=True, allow_infinity=True) | st.integers()
        | st.text(st.characters(categories=("L", "N", "P", "S")), max_size=6),
        min_size=1, max_size=30))
    def test_fuzz_field_lists_never_raise_untyped_errors(self, fields):
        line = " ".join(str(f) for f in fields)
        try:
            parse_swf_text(HEADER + line)
        except TraceFormatError:
            pass


class TestMapping:
    def test_processor_seconds_preserved(self):
        cfg = SwfMapConfig(capacity=8, slot_seconds=60.0, max_tasks=4)
        trace = parse_swf_text(HEADER + record(run=600, alloc=16))
        (spec,) = swf_to_specs(trace, config=cfg)
        # 16 procs for 600 s = 160 work-slots over min(16, 4) tasks.
        assert spec.task_durations == (40, 40, 40, 40)
        assert sum(spec.task_durations) * cfg.slot_seconds >= 600 * 16

    def test_short_job_gets_at_least_one_slot_per_task(self):
        trace = parse_swf_text(HEADER + record(run=1, alloc=2))
        (spec,) = swf_to_specs(trace)
        assert all(d >= 1 for d in spec.task_durations)

    def test_cancelled_and_zero_runtime_jobs_are_skipped(self):
        text = (HEADER
                + record(job_number=1) + "\n"
                + record(job_number=2, submit=5, status=5) + "\n"
                + record(job_number=3, submit=9, run=0))
        specs = swf_to_specs(parse_swf_text(text))
        assert [s.job_id for s in specs] == ["swf-000001"]

    def test_include_failed_toggle(self):
        text = (HEADER + record(job_number=1) + "\n"
                + record(job_number=2, submit=5, status=0))
        assert len(swf_to_specs(parse_swf_text(text))) == 2
        kept = swf_to_specs(parse_swf_text(text),
                            config=SwfMapConfig(include_failed=False))
        assert [s.job_id for s in kept] == ["swf-000001"]

    def test_max_jobs_truncates_after_skips(self):
        text = HEADER + "\n".join(
            record(job_number=k, submit=10 * k) for k in range(1, 6))
        specs = swf_to_specs(parse_swf_text(text),
                             config=SwfMapConfig(max_jobs=2))
        assert [s.job_id for s in specs] == ["swf-000001", "swf-000002"]

    def test_arrivals_rebased_to_slot_zero(self):
        text = (HEADER + record(job_number=1, submit=5000) + "\n"
                + record(job_number=2, submit=5300))
        specs = swf_to_specs(parse_swf_text(text),
                             config=SwfMapConfig(slot_seconds=60.0))
        assert specs[0].arrival == 0
        assert specs[1].arrival == 5  # 300 s / 60 s-per-slot

    def test_template_label_prefers_executable_then_queue(self):
        text = (HEADER + record(job_number=1, executable=7) + "\n"
                + record(job_number=2, submit=5, executable=-1, queue=2) + "\n"
                + record(job_number=3, submit=9, executable=-1, queue=-1))
        specs = swf_to_specs(parse_swf_text(text))
        assert [s.template for s in specs] == [
            "swf-app-7", "swf-queue-2", "swf-misc"]

    def test_requested_time_becomes_prior(self):
        cfg = SwfMapConfig(slot_seconds=60.0, max_tasks=4)
        trace = parse_swf_text(HEADER + record(run=600, alloc=4,
                                               req_time=1200))
        (spec,) = swf_to_specs(trace, config=cfg)
        # 1200 s * 4 procs over 4 tasks of 60 s slots = 20 slots per task.
        assert spec.prior_runtime == pytest.approx(20.0)

    def test_uniform_classify_rule(self):
        specs = load_swf_workload(
            bundled_swf_path(), config=SwfMapConfig(classify="uniform"))
        assert {s.sensitivity for s in specs} == {"sensitive"}

    def test_tercile_classify_covers_all_classes(self):
        specs = load_swf_workload(bundled_swf_path())
        assert {s.sensitivity for s in specs} == {
            "critical", "sensitive", "insensitive"}

    def test_budget_is_ratio_times_benchmark(self):
        specs = load_swf_workload(
            bundled_swf_path(), config=SwfMapConfig(budget_ratio=3.0))
        for spec in specs:
            assert spec.budget == pytest.approx(3.0 * spec.benchmark_runtime)
            assert math.isfinite(spec.budget)

    def test_mapping_is_deterministic(self):
        one = load_swf_workload(bundled_swf_path())
        two = load_swf_workload(bundled_swf_path())
        assert [s.job_id for s in one] == [s.job_id for s in two]
        assert [s.task_durations for s in one] == [
            s.task_durations for s in two]

    def test_bad_map_config_rejected(self):
        with pytest.raises(ConfigurationError):
            SwfMapConfig(slot_seconds=0.0)
        with pytest.raises(ConfigurationError):
            SwfMapConfig(max_tasks=0)
        with pytest.raises(ConfigurationError):
            SwfMapConfig(classify="quartile")
        with pytest.raises(ConfigurationError):
            SwfMapConfig(max_jobs=0)

    def test_ingestion_metrics_emitted_when_enabled(self):
        handle = obs.enable(trace=False, metrics=True, ledger=False)
        load_swf_workload(bundled_swf_path())
        snapshot = handle.metrics.snapshot()
        assert snapshot["rush_swf_lines_total"]["values"] == [[[], 97.0]]
        assert snapshot["rush_swf_records_total"]["values"] == [[[], 80.0]]
        outcomes = dict(
            (tuple(labels)[0], count) for labels, count
            in snapshot["rush_swf_jobs_total"]["values"])
        assert outcomes["ingested"] == 79.0
        assert outcomes["skipped-cancelled"] == 1.0


class TestRebaseArrivals:
    def test_empty_and_identity(self):
        assert rebase_arrivals([]) == []
        specs = load_swf_workload(bundled_swf_path())
        assert rebase_arrivals(specs) == list(specs)

    def test_shifts_to_requested_start(self):
        specs = load_swf_workload(bundled_swf_path())
        tail = [s for s in specs if s.arrival > 0]
        rebased = rebase_arrivals(tail, start_at=0)
        assert min(s.arrival for s in rebased) == 0
        gaps = [s.arrival for s in tail]
        assert [s.arrival - rebased[0].arrival for s in rebased] == [
            g - gaps[0] for g in gaps]
