"""Scenario-library tests: determinism, differentials, calibration, CLI.

The frozen scenarios are the repo's end-to-end contract for real-trace
ingestion: every fast variant must (a) produce bit-identical outcomes
across runs of the same seed, (b) keep RUSH's mean realized utility at
or above the greedy-EDF baseline, and (c) earn a CALIBRATED verdict for
the trace-fitted estimators on the held-out suffix.  The ``slow``-marked
battery repeats the differential at paper scale.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.workload.scenarios import (
    DEFAULT_BASELINES,
    SCENARIOS,
    run_scenario,
    scenario_by_name,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

FAST_SEED = 0


@pytest.fixture(scope="module")
def fast_outcomes():
    """One fast run of every scenario, shared across this module."""
    return {name: run_scenario(name, seed=FAST_SEED, fast=True)
            for name in sorted(SCENARIOS)}


class TestRegistry:
    def test_ships_the_three_scenarios(self):
        assert sorted(SCENARIOS) == ["hpc-replay", "mixed-tenancy",
                                     "web-bursty"]
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name
            assert scenario.description
            assert scenario_by_name(name) is scenario

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            scenario_by_name("does-not-exist")

    def test_unknown_baseline_raises(self):
        with pytest.raises(ConfigurationError, match="unknown baseline"):
            run_scenario("hpc-replay", baselines=("speedy",))


class TestDeterminism:
    def test_hpc_replay_digest_is_bit_identical_across_runs(
            self, fast_outcomes):
        rerun = run_scenario("hpc-replay", seed=FAST_SEED, fast=True)
        assert rerun.digest() == fast_outcomes["hpc-replay"].digest()

    def test_json_artifacts_are_byte_identical(self, fast_outcomes,
                                               tmp_path):
        from repro.analysis.scenario import save_scenario_json

        rerun = run_scenario("hpc-replay", seed=FAST_SEED, fast=True)
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        save_scenario_json(fast_outcomes["hpc-replay"], first)
        save_scenario_json(rerun, second)
        assert first.read_bytes() == second.read_bytes()

    def test_different_seeds_change_synthetic_outcomes(self):
        one = run_scenario("web-bursty", seed=0, fast=True)
        two = run_scenario("web-bursty", seed=1, fast=True)
        assert one.digest() != two.digest()


class TestFastDifferential:
    """The 50-job CI variant of the RUSH-vs-baselines differential."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_rush_mean_utility_at_least_edf(self, fast_outcomes, name):
        outcome = fast_outcomes[name]
        assert set(outcome.results) == {"rush", *DEFAULT_BASELINES}
        assert outcome.mean_utility("rush") >= outcome.mean_utility("edf")

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_fitted_estimators_are_calibrated(self, fast_outcomes, name):
        report = fast_outcomes[name].calibration
        assert report is not None and report.rows
        assert report.calibrated
        assert report.coverage_last >= report.theta - 1e-9

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_policy_finishes_the_holdout(self, fast_outcomes, name):
        outcome = fast_outcomes[name]
        for result in outcome.results.values():
            assert not result.timed_out
            assert len(result.records) == outcome.holdout_jobs


@pytest.mark.slow
class TestFullDifferential:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_rush_mean_utility_at_least_edf_at_scale(self, name):
        outcome = run_scenario(name, seed=FAST_SEED, fast=False)
        assert outcome.mean_utility("rush") >= outcome.mean_utility("edf")
        assert outcome.calibration is not None
        assert outcome.calibration.calibrated


class TestArtifactShape:
    def test_to_dict_excludes_wall_clock_fields(self, fast_outcomes):
        dump = fast_outcomes["hpc-replay"].to_dict()
        blob = json.dumps(dump)
        assert "planner_seconds" not in blob
        assert dump["digest"] == fast_outcomes["hpc-replay"].digest()
        assert set(dump["utility_margins"]) == set(DEFAULT_BASELINES)
        assert dump["calibration"]["calibrated"] is True

    def test_hpc_artifact_reports_ingestion_metrics(self, fast_outcomes):
        metrics = fast_outcomes["hpc-replay"].ingestion_metrics
        assert metrics["rush_swf_records_total"]["values"] == [[[], 80.0]]

    def test_fit_summary_names_the_swf_applications(self, fast_outcomes):
        summary = fast_outcomes["hpc-replay"].fit_summary
        assert all(label.startswith("swf-app-") for label in summary)
        for stats in summary.values():
            assert stats["samples"] >= 1
            assert stats["mean"] > 0


class TestScenarioCli:
    def test_scenarios_list(self, capsys):
        assert cli_main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_scenarios_run_writes_json_artifact(self, capsys, tmp_path):
        artifact = tmp_path / "hpc.json"
        code = cli_main(["scenarios", "run", "hpc-replay",
                         "--seed", "0", "--json", str(artifact)])
        assert code == 0
        out = capsys.readouterr().out
        assert "CALIBRATED" in out
        assert "digest:" in out
        assert "planner_seconds" not in out
        data = json.loads(artifact.read_text())
        assert data["scenario"] == "hpc-replay"
        assert data["digest"]

    def test_scenarios_run_all_requires_out_dir_for_json(self, capsys):
        code = cli_main(["scenarios", "run", "all", "--json", "x.json"])
        assert code == 2
        assert "--out-dir" in capsys.readouterr().err

    def test_ingest_cli_maps_the_bundled_excerpt(self, capsys, tmp_path):
        from repro.workload.scenarios import bundled_swf_path
        from repro.workload.trace import load_trace

        out = tmp_path / "trace.jsonl"
        code = cli_main(["ingest", "--swf", str(bundled_swf_path()),
                         "--out", str(out), "--max-jobs", "10"])
        assert code == 0
        assert "ingested 10 jobs" in capsys.readouterr().out
        assert len(load_trace(out)) == 10

    def test_ingest_cli_reports_format_errors(self, capsys, tmp_path):
        bad = tmp_path / "bad.swf"
        bad.write_text("1 2 3\n")
        code = cli_main(["ingest", "--swf", str(bad),
                         "--out", str(tmp_path / "t.jsonl")])
        assert code == 2
        err = capsys.readouterr().err
        assert "truncated" in err and "line 1" in err
