"""Golden-file tests for the ``rush generate`` / ``rush plan`` formats.

The golden files under ``tests/golden/`` were produced by the CLI itself
(``rush generate --jobs 6 --seed 42`` and ``rush plan --json`` over that
trace) and pin the on-disk formats:

* the trace file must round-trip load→save byte-identically, so external
  tooling can rely on the JSON-lines layout;
* the plan JSON's *schema* is strict (key sets and types must match the
  golden file exactly) while numeric *values* are compared tolerantly —
  they depend on the solver, not on numpy's bit-generator, but small
  float-formatting drift should not break the format contract.

Regenerate with::

    PYTHONPATH=src python -m repro.cli generate --jobs 6 --seed 42 \
        --out tests/golden/trace.jsonl
    PYTHONPATH=src python -m repro.cli plan --trace tests/golden/trace.jsonl \
        --json tests/golden/plan.json
"""

from __future__ import annotations

import json
import math
import subprocess
import sys
from pathlib import Path

from repro.workload.trace import (load_trace, save_trace, spec_from_dict,
                                  spec_to_dict)

GOLDEN = Path(__file__).parent / "golden"
TRACE = GOLDEN / "trace.jsonl"
PLAN = GOLDEN / "plan.json"

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_cli(*argv, cwd=None):
    env_src = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, cwd=cwd or REPO_ROOT,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin:/usr/local/bin"},
        check=False)


class TestTraceRoundTrip:
    def test_golden_trace_round_trips_byte_identically(self, tmp_path):
        specs = load_trace(TRACE)
        out = tmp_path / "rewritten.jsonl"
        save_trace(specs, out)
        assert out.read_bytes() == TRACE.read_bytes()

    def test_spec_dict_round_trip_is_lossless(self):
        for spec in load_trace(TRACE):
            clone = spec_from_dict(spec_to_dict(spec))
            assert spec_to_dict(clone) == spec_to_dict(spec)

    def test_golden_trace_contents(self):
        specs = load_trace(TRACE)
        assert len(specs) == 6
        assert [s.job_id for s in specs] == [f"job-{k:04d}" for k in range(6)]
        assert all(s.arrival >= 0 for s in specs)
        assert all(s.task_durations for s in specs)
        header = json.loads(TRACE.read_text().splitlines()[0])
        assert header == {"format": "rush-trace", "version": 1}

    def test_generate_cli_is_deterministic(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            proc = run_cli("generate", "--jobs", "4", "--seed", "7",
                           "--out", str(path))
            assert proc.returncode == 0, proc.stderr
        assert paths[0].read_bytes() == paths[1].read_bytes()
        # and the output is itself loadable
        assert len(load_trace(paths[0])) == 4


def _schema(value, path="$"):
    """Map a JSON value to its nested key/type structure."""
    if isinstance(value, dict):
        return {key: _schema(item, f"{path}.{key}")
                for key, item in sorted(value.items())}
    if isinstance(value, list):
        return [_schema(item, f"{path}[{k}]")
                for k, item in enumerate(value)]
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if value is None:
        return "null"
    return type(value).__name__


def _numbers(value, path="$", out=None):
    if out is None:
        out = {}
    if isinstance(value, dict):
        for key, item in value.items():
            _numbers(item, f"{path}.{key}", out)
    elif isinstance(value, list):
        for k, item in enumerate(value):
            _numbers(item, f"{path}[{k}]", out)
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        out[path] = float(value)
    return out


class TestPlanGolden:
    def test_plan_json_schema_matches_golden(self, tmp_path):
        golden = json.loads(PLAN.read_text())
        out = tmp_path / "plan.json"
        proc = run_cli("plan", "--trace", str(TRACE), "--json", str(out))
        assert proc.returncode == 0, proc.stderr
        fresh = json.loads(out.read_text())
        # strict: the key sets and types must match the golden file
        assert _schema(fresh) == _schema(golden)

    def test_plan_json_values_match_golden_tolerantly(self, tmp_path):
        golden = json.loads(PLAN.read_text())
        out = tmp_path / "plan.json"
        proc = run_cli("plan", "--trace", str(TRACE), "--json", str(out))
        assert proc.returncode == 0, proc.stderr
        fresh = _numbers(json.loads(out.read_text()))
        for path, expected in _numbers(golden).items():
            assert math.isclose(fresh[path], expected, rel_tol=1e-6,
                                abs_tol=1e-9), path

    def test_golden_plan_invariants(self):
        golden = json.loads(PLAN.read_text())
        assert golden["fallback"] == ""
        assert golden["feasibility_checks"] > 0
        jobs = golden["jobs"]
        assert len(jobs) == 6
        assert [j["job_id"] for j in jobs] == sorted(j["job_id"]
                                                     for j in jobs)
        for job in jobs:
            assert job["robust_demand"] >= job["reference_demand"]
            assert 1 <= job["layer"] <= golden["layers"]
            if job["achievable"]:
                assert job["target_completion"] <= golden["horizon"]

    def test_plan_cli_output_is_deterministic(self, tmp_path):
        outs = [tmp_path / "a.json", tmp_path / "b.json"]
        for out in outs:
            proc = run_cli("plan", "--trace", str(TRACE), "--json", str(out))
            assert proc.returncode == 0, proc.stderr
        assert outs[0].read_bytes() == outs[1].read_bytes()


class TestSwfGolden:
    """The bundled SWF excerpt pins the whole parse→map pipeline.

    Regenerate (only after an intentional mapping-rule change) with::

        PYTHONPATH=src python -c "
        from repro.workload.swf import load_swf_workload
        from repro.workload.trace import save_trace
        save_trace(load_swf_workload('src/repro/workload/data/hpc_excerpt.swf'),
                   'tests/golden/swf_excerpt.jsonl')"
    """

    SWF_GOLDEN = GOLDEN / "swf_excerpt.jsonl"

    def fixture_path(self):
        from repro.workload.scenarios import bundled_swf_path

        return bundled_swf_path()

    def test_bundled_excerpt_maps_to_golden_specs(self, tmp_path):
        from repro.workload.swf import load_swf_workload

        specs = load_swf_workload(self.fixture_path())
        out = tmp_path / "swf_excerpt.jsonl"
        save_trace(specs, out)
        assert out.read_bytes() == self.SWF_GOLDEN.read_bytes()

    def test_golden_swf_specs_load_cleanly(self):
        specs = load_trace(self.SWF_GOLDEN)
        assert len(specs) == 79
        assert [s.job_id for s in specs] == sorted(s.job_id for s in specs)
        assert {s.sensitivity for s in specs} == {
            "critical", "sensitive", "insensitive"}

    def test_ingest_cli_round_trips_the_golden(self, tmp_path):
        out = tmp_path / "ingested.jsonl"
        proc = run_cli("ingest", "--swf", str(self.fixture_path()),
                       "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        assert out.read_bytes() == self.SWF_GOLDEN.read_bytes()
