"""Speculative execution × fault injection: no double-counted demand.

A speculative duplicate races its original; a fault injector may crash
either copy mid-race.  The satellite invariants: a crashed original with
a live duplicate is NOT requeued (the duplicate carries the logical
task), the scheduler observes each logical completion exactly once (the
DE feed sees no duplicate demand), and the job's bookkeeping survives
arbitrary crash/speculate interleavings.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSimulator, JobSpec, SimJob
from repro.cluster.task import TaskState
from repro.faults import (ContainerCrashInjector, FaultPlan,
                          SpecFailureInjector, StragglerInjector)
from repro.schedulers import FifoScheduler, RushScheduler, SpeculativeScheduler
from repro.utility import LinearUtility


def spec(job_id="j", durations=(3, 3), arrival=0, failure_prob=0.0,
         prior_runtime=None):
    return JobSpec(job_id=job_id, arrival=arrival,
                   task_durations=tuple(durations),
                   utility=LinearUtility(100.0, 1.0), budget=100.0,
                   failure_prob=failure_prob, prior_runtime=prior_runtime)


class CountingScheduler(FifoScheduler):
    """FIFO base that tallies per-logical-task completion observations."""

    def __init__(self):
        super().__init__()
        self.observations = {}

    def on_task_complete(self, job, task) -> None:
        key = (job.job_id, task.logical_id)
        self.observations[key] = self.observations.get(key, 0) + 1
        super().on_task_complete(job, task)


class TestCrashedOriginalWithDuplicate:
    def test_failed_original_not_requeued_while_duplicate_lives(self):
        job = SimJob(spec(durations=(5,)))
        original = job.next_pending()
        original.launch(0)
        job.note_launched()
        duplicate = job.speculate(original.logical_id, 5)
        duplicate.launch(1)
        job.note_launched()
        pending_before = job.pending_count
        original.fail_after = original.executed + 1
        original.advance(1)
        assert original.state is TaskState.FAILED
        retry = job.note_failed(original)
        assert retry is None                    # duplicate carries the work
        assert job.pending_count == pending_before  # no double-counted demand
        duplicate.advance(2)
        for _ in range(4):
            duplicate.advance(3)
        assert duplicate.state is TaskState.COMPLETED
        assert job.note_completed(duplicate)
        assert job.is_complete

    def test_crashed_duplicate_leaves_original_racing(self):
        job = SimJob(spec(durations=(5,)))
        original = job.next_pending()
        original.launch(0)
        job.note_launched()
        duplicate = job.speculate(original.logical_id, 5)
        duplicate.launch(0)
        job.note_launched()
        duplicate.fail_after = duplicate.executed + 1
        duplicate.advance(0)
        assert job.note_failed(duplicate) is None  # original still live
        assert not job.has_duplicate(original.logical_id)
        for _ in range(5):
            original.advance(1)
        assert job.note_completed(original)
        assert job.is_complete

    def test_both_copies_crashed_requeues_once(self):
        job = SimJob(spec(durations=(5,)))
        original = job.next_pending()
        original.launch(0)
        job.note_launched()
        duplicate = job.speculate(original.logical_id, 5)
        duplicate.launch(0)
        job.note_launched()
        for attempt in (original, duplicate):
            attempt.fail_after = attempt.executed + 1
            attempt.advance(0)
        first = job.note_failed(original)
        second = job.note_failed(duplicate)
        requeued = [t for t in (first, second) if t is not None]
        assert len(requeued) == 1               # exactly one fresh attempt
        assert job.pending_count == 1


def run_speculative_chaos(base_factory, seed, crash_rate=0.05,
                          straggle_rate=0.1, n_jobs=3, max_slots=4000):
    plan = FaultPlan([ContainerCrashInjector(rate=crash_rate),
                      StragglerInjector(rate=straggle_rate, slowdown=3.0),
                      SpecFailureInjector()], seed=seed)
    scheduler = SpeculativeScheduler(base_factory(), min_samples=1,
                                     slowdown_threshold=1.2)
    sim = ClusterSimulator(4, scheduler, faults=plan)
    for k in range(n_jobs):
        sim.submit(spec(job_id=f"j{k}", durations=(2, 2, 6, 6),
                        arrival=k, failure_prob=0.1, prior_runtime=2.0))
    result = sim.run(max_slots=max_slots)
    return sim, scheduler, result


class TestSpeculationUnderChaos:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_each_logical_completion_observed_once(self, seed):
        sim, scheduler, result = run_speculative_chaos(CountingScheduler,
                                                       seed)
        assert not result.timed_out
        base = scheduler._base
        assert base.observations  # races actually resolved
        assert all(n == 1 for n in base.observations.values())

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_bookkeeping_survives_crash_speculate_interleavings(self, seed):
        sim, scheduler, result = run_speculative_chaos(FifoScheduler, seed)
        assert not result.timed_out
        assert result.completed_count == 3
        for k in range(3):
            job = sim.job(f"j{k}")
            assert job.is_complete
            assert job.pending_count == 0
            assert job.running_count == 0
            completed = {}
            for t in job.tasks:
                if t.state is TaskState.COMPLETED:
                    completed[t.logical_id] = completed.get(t.logical_id,
                                                            0) + 1
            assert all(n == 1 for n in completed.values())
            assert len(completed) == len(job.spec.task_durations)

    def test_speculation_actually_fires_under_chaos(self):
        # Guard against vacuous race tests: the straggler injector must
        # manufacture candidates that the wrapper actually duplicates.
        sim, scheduler, result = run_speculative_chaos(FifoScheduler, seed=0)
        assert result.speculative_launches > 0
        assert result.completed_count == 3

    def test_rush_estimator_sees_no_duplicate_demand(self):
        # RUSH's DE feed under speculation + crashes: one observation per
        # logical task, so the demand estimate cannot double-count.
        observed = []

        class SpyRush(RushScheduler):
            def on_task_complete(self, job, task):
                observed.append((job.job_id, task.logical_id))
                super().on_task_complete(job, task)

        sim, scheduler, result = run_speculative_chaos(SpyRush, seed=5)
        assert not result.timed_out
        assert result.completed_count == 3
        assert len(observed) == len(set(observed))
