"""Tests for the end-to-end RushPlanner (WCDE -> onion -> mapping)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.core.planner import PlannerJob, RushPlanner
from repro.estimation import DemandEstimate, GaussianEstimator, MeanTimeEstimator, Pmf
from repro.utility import ConstantUtility, LinearUtility, SigmoidUtility


def estimate(mean: float, std: float, runtime: float = 5.0) -> DemandEstimate:
    pmf = Pmf.from_gaussian(mean, std)
    return DemandEstimate(pmf=pmf, bin_width=1.0, container_runtime=runtime,
                          sample_count=50)


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            RushPlanner(0)
        with pytest.raises(ConfigurationError):
            RushPlanner(4, theta=1.5)
        with pytest.raises(ConfigurationError):
            RushPlanner(4, delta=-1)
        with pytest.raises(ConfigurationError):
            RushPlanner(4, tolerance=0)

    def test_duplicate_ids(self):
        planner = RushPlanner(4)
        job = PlannerJob("x", LinearUtility(50, 1), estimate(20, 3))
        with pytest.raises(ConfigurationError):
            planner.plan([job, job])


class TestRobustDemand:
    def test_eta_at_least_reference(self):
        planner = RushPlanner(4, theta=0.9, delta=0.7)
        eta, ref, iters = planner.robust_demand(estimate(100, 15))
        assert eta >= ref
        assert iters >= 1

    def test_delta_zero_equals_reference(self):
        planner = RushPlanner(4, theta=0.9, delta=0.0)
        eta, ref, _ = planner.robust_demand(estimate(100, 15))
        assert eta == ref

    def test_per_job_delta_override(self):
        planner = RushPlanner(4, theta=0.9, delta=0.0)
        est = estimate(100, 15)
        base, _, _ = planner.robust_demand(est)
        robust, _, _ = planner.robust_demand(est, delta=2.0)
        assert robust > base

    def test_bin_width_respected(self):
        planner = RushPlanner(4, theta=0.9, delta=0.0)
        pmf = Pmf.from_gaussian(100, 15)
        wide = DemandEstimate(pmf=pmf, bin_width=10.0, container_runtime=5.0,
                              sample_count=10)
        eta, _, _ = planner.robust_demand(wide)
        assert eta == pytest.approx(10.0 * pmf.quantile(0.9))


class TestPlan:
    def test_empty_plan(self):
        plan = RushPlanner(4).plan([])
        assert plan.jobs == {}
        assert plan.next_slot_allocation() == {}
        assert plan.utility_vector() == []

    def test_single_job_plan(self):
        planner = RushPlanner(8, theta=0.9, delta=0.5)
        job = PlannerJob("solo", LinearUtility(200, 5), estimate(100, 10))
        plan = planner.plan([job])
        jp = plan.jobs["solo"]
        assert jp.robust_demand >= jp.reference_demand
        assert jp.target_completion >= 1
        assert jp.achievable
        assert plan.solve_seconds >= 0
        # the mapping respects Theorem 3 for a feasible single job
        assert jp.planned_completion <= jp.target_completion + 5.0 + 1e-9

    def test_next_slot_allocation_covers_capacity(self):
        planner = RushPlanner(4, theta=0.9, delta=0.2)
        jobs = [
            PlannerJob("a", LinearUtility(100, 2), estimate(60, 6)),
            PlannerJob("b", LinearUtility(120, 1), estimate(40, 5)),
        ]
        plan = planner.plan(jobs)
        allocation = plan.next_slot_allocation()
        assert sum(allocation.values()) <= 4
        assert sum(allocation.values()) >= 1

    def test_impossible_job_reported(self):
        """A job that cannot reach positive utility shows as a red row."""
        planner = RushPlanner(2, theta=0.9, delta=0.2)
        jobs = [
            PlannerJob("doomed", LinearUtility(5, 1), estimate(200, 10),
                       elapsed=50.0),
            PlannerJob("fine", ConstantUtility(1), estimate(20, 4)),
        ]
        plan = planner.plan(jobs)
        assert "doomed" in plan.impossible_jobs()
        assert "fine" not in plan.impossible_jobs()

    def test_compensation_toggle(self):
        est = estimate(100, 10, runtime=20.0)
        job = PlannerJob("a", LinearUtility(60, 1), est)
        with_comp = RushPlanner(4, delta=0.0).plan([job])
        without = RushPlanner(4, delta=0.0, compensate_runtime=False).plan([job])
        assert (with_comp.jobs["a"].target_completion
                <= without.jobs["a"].target_completion)

    def test_elapsed_propagates(self):
        est = estimate(100, 10)
        fresh = RushPlanner(4, delta=0.0).plan(
            [PlannerJob("a", LinearUtility(100, 1), est)])
        aged = RushPlanner(4, delta=0.0).plan(
            [PlannerJob("a", LinearUtility(100, 1), est, elapsed=50.0)])
        assert (aged.jobs["a"].predicted_utility
                <= fresh.jobs["a"].predicted_utility)

    def test_explicit_horizon(self):
        planner = RushPlanner(4, delta=0.0)
        job = PlannerJob("a", ConstantUtility(1), estimate(40, 5))
        plan = planner.plan([job], horizon=500)
        assert plan.horizon == 500
        assert plan.jobs["a"].target_completion <= 500

    def test_utility_vector_sorted(self):
        planner = RushPlanner(4, theta=0.9, delta=0.3)
        jobs = [
            PlannerJob("a", SigmoidUtility(80, 5, beta=0.5), estimate(60, 6)),
            PlannerJob("b", SigmoidUtility(100, 2, beta=0.05), estimate(50, 5)),
            PlannerJob("c", ConstantUtility(3), estimate(30, 4)),
        ]
        vec = planner.plan(jobs).utility_vector()
        assert vec == sorted(vec)


class TestFeedbackCycleConsistency:
    def test_plan_stable_under_replan(self):
        """Re-planning the identical snapshot yields identical decisions."""
        planner = RushPlanner(6, theta=0.9, delta=0.5)
        de = GaussianEstimator(prior_mean=10, prior_std=2)
        jobs = [
            PlannerJob("a", LinearUtility(100, 2), de.estimate(12)),
            PlannerJob("b", SigmoidUtility(90, 3, beta=0.1), de.estimate(8)),
        ]
        p1 = planner.plan(jobs)
        p2 = planner.plan(jobs)
        for jid in ("a", "b"):
            assert p1.jobs[jid].target_completion == p2.jobs[jid].target_completion
            assert p1.jobs[jid].robust_demand == p2.jobs[jid].robust_demand

    def test_shrinking_demand_never_hurts_single_job(self):
        """As work completes (pending drops), the target moves earlier."""
        planner = RushPlanner(4, theta=0.9, delta=0.3)
        de = MeanTimeEstimator(prior_runtime=10.0)
        utility = LinearUtility(300, 2)
        targets = []
        for pending in (40, 30, 20, 10):
            plan = planner.plan(
                [PlannerJob("a", utility, de.estimate(pending))])
            targets.append(plan.jobs["a"].target_completion)
        assert targets == sorted(targets, reverse=True)
