"""The observability layer: spans, metrics, ledger, exporters, goldens.

Property-based coverage of the invariants ``repro.obs`` advertises:

* span trees are *well-nested* — for any two spans the ``[seq,
  end_seq]`` intervals either nest or are disjoint — and sequence
  numbers strictly increase in open order, under arbitrary interleaved
  open/close/event/slot operations (hypothesis-driven state machine);
* histogram bucket counts always sum to the observation count, and the
  rendered Prometheus cumulative ``+Inf`` bucket equals ``_count``;
* two same-seed simulations produce byte-identical metric snapshots and
  span traces; enabling the tracer does not perturb the schedule (the
  ``SimulationResult`` is bit-identical minus wall-clock profiling);
* the golden files under ``tests/golden/`` pin the exact trace JSONL
  and metrics text of one seeded run.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.analysis.calibration import calibration_report
from repro.cluster.simulator import run_simulation
from repro.errors import ConfigurationError
from repro.obs.export import (read_trace_jsonl, trace_jsonl_lines,
                              write_metrics_text, write_trace_jsonl)
from repro.obs.ledger import CompletionLedger
from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.trace import NullTracer, SpanTracer, json_safe
from repro.schedulers import FifoScheduler, RushScheduler
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

GOLDEN = Path(__file__).resolve().parent / "golden"

SMALL = WorkloadConfig(n_jobs=4, capacity=4, mean_interarrival=120.0,
                       budget_ratio=1.5, size_gb_range=(0.5, 1.0),
                       time_scale=0.25)


def small_specs(seed: int = 11):
    return WorkloadGenerator(SMALL, seed=seed).generate()


def result_dict_without_wall_clock(result):
    """``to_dict()`` minus the fields legitimately run-dependent."""
    data = result.to_dict()
    data.pop("planner_seconds", None)
    data.pop("metrics", None)
    return data


# ---------------------------------------------------------------------------
# Span tracer: hypothesis state machine over open/close/event/slot ops
# ---------------------------------------------------------------------------

span_ops = st.lists(
    st.one_of(
        st.tuples(st.just("open"),
                  st.sampled_from(["wcde", "onion", "map", "plan"])),
        st.tuples(st.just("close"), st.just("")),
        st.tuples(st.just("event"), st.sampled_from(["hit", "miss"])),
        st.tuples(st.just("slot"), st.integers(min_value=0, max_value=9)),
    ),
    max_size=80)


def run_ops(tracer: SpanTracer, ops):
    """Drive the tracer through an op list; close leftovers at the end."""
    stack = []
    slot = 0
    for kind, arg in ops:
        if kind == "open":
            stack.append(tracer.span(arg, op="test"))
        elif kind == "close" and stack:
            stack.pop().__exit__(None, None, None)
        elif kind == "event":
            tracer.event(arg)
        elif kind == "slot":
            slot += int(arg)
            tracer.set_slot(slot)
    while stack:
        stack.pop().__exit__(None, None, None)


class TestSpanTracerProperties:
    @given(ops=span_ops)
    @settings(max_examples=80, deadline=None)
    def test_seqs_strictly_increase_in_open_order(self, ops):
        tracer = SpanTracer()
        run_ops(tracer, ops)
        seqs = [s.seq for s in tracer.spans]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        assert all(s.seq >= 1 for s in tracer.spans)

    @given(ops=span_ops)
    @settings(max_examples=80, deadline=None)
    def test_all_spans_close_with_end_after_open(self, ops):
        tracer = SpanTracer()
        run_ops(tracer, ops)
        for span in tracer.spans:
            assert span.closed
            assert span.end_seq >= span.seq
            assert span.end_slot >= span.slot

    @given(ops=span_ops)
    @settings(max_examples=80, deadline=None)
    def test_intervals_are_well_nested(self, ops):
        tracer = SpanTracer()
        run_ops(tracer, ops)
        spans = tracer.spans
        for i, a in enumerate(spans):
            for b in spans[i + 1:]:
                nested = ((a.seq <= b.seq and b.end_seq <= a.end_seq)
                          or (b.seq <= a.seq and a.end_seq <= b.end_seq))
                disjoint = a.end_seq < b.seq or b.end_seq < a.seq
                assert nested or disjoint, (a.to_dict(), b.to_dict())

    @given(ops=span_ops)
    @settings(max_examples=80, deadline=None)
    def test_parent_links_contain_children(self, ops):
        tracer = SpanTracer()
        run_ops(tracer, ops)
        by_seq = {s.seq: s for s in tracer.spans}
        for span in tracer.spans:
            if span.parent_seq is None:
                assert span.depth == 0
                continue
            parent = by_seq[span.parent_seq]
            assert span.depth == parent.depth + 1
            assert parent.seq < span.seq
            assert span.end_seq <= parent.end_seq

    @given(ops=span_ops)
    @settings(max_examples=40, deadline=None)
    def test_jsonl_lines_roundtrip_every_span(self, ops):
        tracer = SpanTracer()
        run_ops(tracer, ops)
        lines = trace_jsonl_lines(tracer)
        assert [json.loads(line) for line in lines] == tracer.to_dicts()


class TestSpanTracerUnits:
    def test_events_are_zero_width(self):
        tracer = SpanTracer()
        event = tracer.event("cache.hit", theta=0.9)
        assert event.end_seq == event.seq
        assert event.closed

    def test_exception_is_noted_and_span_closed(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("solve"):
                raise ValueError("boom")
        (span,) = tracer.spans
        assert span.closed
        assert span.payload["error"] == "ValueError"

    def test_jsonl_file_roundtrip(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("outer", jobs=2):
            tracer.event("inner")
        path = tmp_path / "trace.jsonl"
        assert write_trace_jsonl(tracer, str(path)) == 2
        assert read_trace_jsonl(str(path)) == tracer.to_dicts()

    def test_forgotten_child_is_closed_with_parent(self):
        tracer = SpanTracer()
        with tracer.span("parent"):
            tracer.span("dangling")  # no with: stays open
        parent, child = tracer.spans
        assert child.closed
        assert parent.seq <= child.seq <= child.end_seq <= parent.end_seq

    def test_json_safe_coerces_numpy_and_objects(self):
        import numpy as np
        assert json_safe(np.int64(3)) == 3
        assert json_safe((1, np.float64(2.5))) == [1, 2.5]
        assert json_safe(object()).startswith("<object")

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        with tracer.span("x", a=1) as span:
            span.note(b=2)
        tracer.event("y")
        tracer.set_slot(5)
        assert tracer.to_dicts() == []
        assert not tracer.active


# ---------------------------------------------------------------------------
# Metrics: histogram invariant, rendering, registry semantics
# ---------------------------------------------------------------------------

bucket_bounds = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    min_size=1, max_size=6, unique=True).map(sorted)

observations = st.lists(
    st.floats(min_value=-1e6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    max_size=100)


class TestHistogramProperties:
    @given(bounds=bucket_bounds, values=observations)
    @settings(max_examples=100, deadline=None)
    def test_bucket_counts_sum_to_observation_count(self, bounds, values):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=bounds)
        for v in values:
            hist.observe(v)
        state = hist.state()
        if not values:
            assert state is None
            return
        assert sum(state.bucket_counts) == len(values) == state.count

    @given(bounds=bucket_bounds, values=observations)
    @settings(max_examples=100, deadline=None)
    def test_bucket_assignment_matches_upper_inclusive_bounds(
            self, bounds, values):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=bounds)
        for v in values:
            hist.observe(v)
        expected = [0] * (len(bounds) + 1)
        for v in values:
            idx = len(bounds)
            for i, bound in enumerate(bounds):
                if v <= bound:
                    idx = i
                    break
            expected[idx] += 1
        state = hist.state()
        got = state.bucket_counts if state else [0] * (len(bounds) + 1)
        assert got == expected

    @given(bounds=bucket_bounds, values=observations)
    @settings(max_examples=50, deadline=None)
    def test_rendered_inf_bucket_equals_count(self, bounds, values):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=bounds)
        for v in values:
            hist.observe(v)
        for line in hist.render():
            if 'le="+Inf"' in line:
                assert int(line.rsplit(" ", 1)[1]) == len(values)


class TestRegistry:
    def test_counter_rejects_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("c").inc(-1)

    def test_get_or_create_rejects_kind_change(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_label_arity_is_enforced(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", labels=("kind",))
        with pytest.raises(ConfigurationError):
            counter.labels("a", "b")

    def test_histogram_requires_increasing_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("h", buckets=[2.0, 1.0])

    def test_prometheus_text_shape(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", help="Jobs", unit="jobs").inc(3)
        registry.gauge("depth").set(2.5)
        hist = registry.histogram("lat", buckets=[1.0, 2.0])
        hist.observe(0.5)
        hist.observe(5.0)
        text = registry.render_prometheus()
        assert "# HELP jobs_total Jobs [jobs]" in text
        assert "jobs_total 3" in text
        assert "depth 2.5" in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 5.5" in text
        assert "lat_count 2" in text
        assert text.endswith("\n")

    def test_snapshot_is_deterministic_json(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("b_total", labels=("k",)).labels("y").inc(2)
            registry.counter("b_total", labels=("k",)).labels("x").inc(1)
            registry.gauge("a").set(7)
            return json.dumps(registry.snapshot(), sort_keys=True)
        assert build() == build()

    def test_null_metrics_swallow_everything(self):
        null = NullMetrics()
        null.counter("c", labels=("k",)).labels("v").inc()
        null.gauge("g").set(1)
        null.histogram("h", buckets=[1.0]).observe(2)
        assert null.snapshot() == {}
        assert null.render_prometheus() == ""
        assert not null.active


# ---------------------------------------------------------------------------
# Ledger + calibration
# ---------------------------------------------------------------------------

class TestLedger:
    def test_first_and_last_predictions_are_kept(self):
        ledger = CompletionLedger()
        ledger.predict("j", 0, 100.0, theta=0.9)
        ledger.predict("j", 5, 90.0, theta=0.9)
        ledger.realize("j", 88)
        (entry,) = ledger.entries()
        assert entry.first_predicted == 100.0
        assert entry.last_predicted == 90.0
        assert entry.actual == 88
        assert entry.predictions == 2

    def test_predictions_after_realize_are_ignored(self):
        ledger = CompletionLedger()
        ledger.predict("j", 0, 100.0, theta=0.9)
        ledger.realize("j", 50)
        ledger.predict("j", 60, 200.0, theta=0.9)
        ledger.realize("j", 70)
        (entry,) = ledger.entries()
        assert entry.last_predicted == 100.0
        assert entry.actual == 50
        assert entry.predictions == 1

    def test_realize_of_unknown_job_is_ignored(self):
        ledger = CompletionLedger()
        ledger.realize("ghost", 5)
        assert ledger.entries() == []

    def test_calibration_coverage_and_verdict(self):
        ledger = CompletionLedger()
        for i, (predicted, actual) in enumerate(
                [(100.0, 90), (50.0, 60), (30.0, 30), (200.0, 150)]):
            ledger.predict(f"j{i}", 0, predicted, theta=0.5)
            ledger.realize(f"j{i}", actual)
        report = calibration_report(ledger)
        assert report.theta == 0.5
        assert report.coverage_last == pytest.approx(0.75)
        assert report.calibrated
        assert "CALIBRATED" in report.summary_table()
        assert report.to_dict()["coverage_last"] == pytest.approx(0.75)

    def test_censored_jobs_do_not_count_against_coverage(self):
        ledger = CompletionLedger()
        ledger.predict("done", 0, 10.0, theta=0.9)
        ledger.realize("done", 8)
        ledger.predict("running", 0, 10.0, theta=0.9)
        report = calibration_report(ledger)
        assert len(report.realized_rows) == 1
        assert report.coverage_last == 1.0
        assert "censored" in report.summary_table()


# ---------------------------------------------------------------------------
# Process-wide install / enable / reset
# ---------------------------------------------------------------------------

class TestObsGlobals:
    def test_defaults_are_null(self):
        assert not obs.get_tracer().active
        assert not obs.get_metrics().active
        assert not obs.get_ledger().active

    def test_enable_subset_nulls_the_rest(self):
        handle = obs.enable(trace=True, metrics=False, ledger=False)
        assert handle.tracer.active
        assert not handle.metrics.active
        assert obs.get_tracer() is handle.tracer
        obs.reset()
        assert not obs.get_tracer().active

    def test_install_replaces_only_what_is_given(self):
        tracer = SpanTracer()
        handle = obs.install(tracer=tracer)
        assert handle.tracer is tracer
        assert not handle.metrics.active


# ---------------------------------------------------------------------------
# End-to-end: simulator integration, determinism, on/off bit-identity
# ---------------------------------------------------------------------------

class TestSimulatorIntegration:
    def _run(self, *, seed=11, enable=None):
        if enable:
            obs.enable(**enable)
        try:
            return run_simulation(small_specs(), 4, RushScheduler(),
                                  seed=seed, max_slots=20_000)
        finally:
            pass  # conftest resets obs after the test

    def test_metrics_snapshots_identical_across_same_seed_runs(self):
        snapshots = []
        for _ in range(2):
            handle = obs.enable(trace=False, metrics=True, ledger=False)
            run_simulation(small_specs(), 4, RushScheduler(),
                           seed=11, max_slots=20_000)
            snapshots.append(json.dumps(handle.metrics.snapshot(),
                                        sort_keys=True))
            obs.reset()
        assert snapshots[0] == snapshots[1]
        assert "rush_wcde_solves_total" in snapshots[0]

    def test_traces_identical_across_same_seed_runs(self):
        traces = []
        for _ in range(2):
            handle = obs.enable(trace=True, metrics=False, ledger=False)
            run_simulation(small_specs(), 4, RushScheduler(),
                           seed=11, max_slots=20_000)
            traces.append("\n".join(trace_jsonl_lines(handle.tracer)))
            obs.reset()
        assert traces[0] == traces[1]
        assert '"name":"planner.plan"' in traces[0]

    def test_tracing_does_not_perturb_the_schedule(self):
        baseline = run_simulation(small_specs(), 4, RushScheduler(),
                                  seed=11, max_slots=20_000)
        obs.enable(trace=True, metrics=True, ledger=True)
        traced = run_simulation(small_specs(), 4, RushScheduler(),
                                seed=11, max_slots=20_000)
        obs.reset()
        assert (result_dict_without_wall_clock(traced)
                == result_dict_without_wall_clock(baseline))

    def test_result_carries_snapshot_only_when_enabled(self):
        plain = run_simulation(small_specs(), 4, FifoScheduler(),
                               seed=11, max_slots=20_000)
        assert plain.metrics_snapshot() == {}
        assert "metrics" not in plain.to_dict()
        obs.enable(trace=False, metrics=True, ledger=False)
        measured = run_simulation(small_specs(), 4, FifoScheduler(),
                                  seed=11, max_slots=20_000)
        obs.reset()
        snap = measured.metrics_snapshot()
        assert snap
        assert "rush_sim_queue_depth" in snap
        assert measured.to_dict()["metrics"] == snap

    def test_ledger_feeds_a_scoreable_calibration_report(self):
        handle = obs.enable(trace=False, metrics=False, ledger=True)
        run_simulation(small_specs(), 4, RushScheduler(),
                       seed=11, max_slots=20_000)
        report = calibration_report(handle.ledger)
        obs.reset()
        assert report.rows
        assert report.theta == pytest.approx(0.9)
        assert all(r.realized for r in report.rows)

    def test_fault_injections_are_counted_by_kind(self):
        from repro.faults import default_chaos_plan
        handle = obs.enable(trace=False, metrics=True, ledger=False)
        result = run_simulation(small_specs(), 4, RushScheduler(), seed=11,
                                max_slots=20_000,
                                faults=default_chaos_plan(seed=11))
        counted = {key[0]: value for key, value in (
            (tuple(labels), value) for labels, value in
            handle.metrics.snapshot()
            ["rush_fault_injections_total"]["values"])}
        obs.reset()
        assert sum(counted.values()) == len(result.fault_events)


# ---------------------------------------------------------------------------
# Golden files: one seeded run, byte-identical artifacts
# ---------------------------------------------------------------------------

def golden_run():
    """The pinned scenario behind tests/golden/obs_*; see regeneration
    instructions in docs/OBSERVABILITY.md."""
    handle = obs.enable(trace=True, metrics=True, ledger=False)
    run_simulation(small_specs(seed=11), 4, RushScheduler(),
                   seed=11, max_slots=20_000)
    return handle


class TestGoldenArtifacts:
    def test_span_trace_matches_golden(self):
        handle = golden_run()
        lines = trace_jsonl_lines(handle.tracer)
        obs.reset()
        expected = (GOLDEN / "obs_spans.jsonl").read_text().splitlines()
        assert lines == expected

    def test_metrics_text_matches_golden(self, tmp_path):
        handle = golden_run()
        text = handle.metrics.render_prometheus()
        write_metrics_text(handle.metrics, str(tmp_path / "m.txt"))
        obs.reset()
        assert (tmp_path / "m.txt").read_text() == text
        assert text == (GOLDEN / "obs_metrics.txt").read_text()
