"""RL009 negative: slot-indexed spans never touch a clock module."""


class SlotSpan:
    def __init__(self, name: str, slot: int, seq: int) -> None:
        self.name = name
        self.slot = slot
        self.seq = seq

    def close(self, end_slot: int, end_seq: int) -> dict:
        return {"name": self.name, "slot": self.slot, "seq": self.seq,
                "end_slot": end_slot, "end_seq": end_seq}
