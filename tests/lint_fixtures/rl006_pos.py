"""RL006 positive: a solver failure silently swallowed."""


def plan_round(planner, jobs):
    try:
        return planner.plan(jobs)
    except Exception:
        return None
