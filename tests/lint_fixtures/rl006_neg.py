"""RL006 negative: failures re-raised or recorded for the ladder."""


def plan_round(planner, jobs, stats):
    try:
        return planner.plan(jobs)
    except RuntimeError:
        stats.fallback = "cold_exact"
        return None


def strict_round(planner, jobs):
    try:
        return planner.plan(jobs)
    except RuntimeError:
        raise


def ledger_round(planner, jobs, errors):
    try:
        return planner.plan(jobs)
    except RuntimeError as exc:
        errors.append(str(exc))
        return None
