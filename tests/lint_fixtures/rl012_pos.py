"""RL012 positive fixture: impurity reachable from a solve root.

``plan`` is a solver entry point; the helper it calls writes a module
global and reads the wall clock — both must be flagged with the
witness call chain even though the helper itself is not named like a
solver.
"""

import time

_CACHE = {}


def plan(jobs):
    return _stamp(jobs)


def _stamp(jobs):
    _CACHE["last"] = len(jobs)
    return time.time()
