"""RL009 positive: clock imports inside the observability package."""
import time
from datetime import datetime, timedelta


def stamp_span(span: dict) -> dict:
    span["wall"] = time.perf_counter()
    span["at"] = datetime.now() + timedelta(seconds=1)
    return span
