"""RL007 negative: public API annotated; private helpers exempt."""
from typing import List, Optional


def solve(jobs: List[str], capacity: int) -> int:
    return capacity


def _helper(x):
    return x


class Planner:
    def plan(self, jobs: List[str], horizon: Optional[int] = None) -> int:
        return horizon or 0

    def _internal(self, x):
        return x


class _Hidden:
    def method(self, x):
        return x
