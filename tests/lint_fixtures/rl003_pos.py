"""RL003 positive: exact equality on float utility/PMF expressions."""


def utility_matches(job, expected):
    if job.utility_value == expected:
        return True
    return job.utility.value(3.0) != 0.5
