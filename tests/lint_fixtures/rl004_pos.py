"""RL004 positive: three breaches of the decision-stream contract."""


class BadInjector:
    def on_slot(self, ctx):
        if ctx.now > 3 and self._fires(ctx):
            ctx.record("bad", "conditional-draw")
        if self.vary.random() < 0.5:
            ctx.record("bad", "variation-decides")

    def on_launch(self, ctx, job, task):
        draw = self._decide.random()
        if draw < self.rate:
            ctx.record("bad", task.task_id)
