"""RL013 positive fixture: pool workers escaping with shared state.

``_tally`` touches a mutable module global (a read and a write, each
reported), and the inline lambda is unpicklable — three findings.
"""

from concurrent.futures import ProcessPoolExecutor

_RESULTS = []


def _tally(shard):
    _RESULTS.append(shard)
    return shard


def run(shards):
    with ProcessPoolExecutor() as pool:
        out = list(pool.map(_tally, shards))
        extra = pool.submit(lambda: 1)
    return out, extra
