"""RL012 negative fixture: the solve path is pure.

The same call shape as the positive fixture, but the helper works on
local state only and derives its result from its arguments — nothing
reachable from ``plan`` writes globals, reads clocks, or does I/O.
"""

_LIMITS = (8, 16)


def plan(jobs):
    return _stamp(jobs)


def _stamp(jobs):
    seen = {}
    seen["last"] = len(jobs)
    return seen["last"] + _LIMITS[0]
