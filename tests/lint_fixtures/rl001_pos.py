"""RL001 positive: module-level RNG in a deterministic package."""
import random

import numpy as np


def draw_gap(mean: float) -> float:
    jitter = random.random()
    noise = np.random.normal(0.0, mean)
    return jitter + noise
