"""RL008 negative: seeded fixture timed with a monotonic clock."""
import time

from numpy.random import default_rng


def make_workload(seed: int):
    rng = default_rng(seed)
    started = time.perf_counter()
    return rng.random(), time.perf_counter() - started
