"""RL003 negative: isclose for floats, exact equality only on ints."""
import math


def utility_matches(job, expected):
    if math.isclose(job.utility_value, expected):
        return True
    return job.layer == 3
