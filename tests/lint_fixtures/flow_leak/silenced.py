# rushlint: disable-file=RL011
"""File-level suppression: this module's violation must stay silent."""

import numpy as np


def silenced_draw():
    rng = np.random.default_rng()
    return rng.normal()
