"""Sibling module with the same violation and *no* suppression.

Proves a ``disable-file=`` in ``silenced.py`` does not leak through
the shared cross-module index: this file's finding must still fire.
"""

import numpy as np


def loud_draw():
    rng = np.random.default_rng()
    return rng.normal()
