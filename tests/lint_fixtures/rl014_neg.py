"""RL014 negative fixture: solver failures reach the ladder.

The handler catches the family *and* records the fallback, so the
raise in ``solve_step`` has a path into the degradation ladder and the
catch is not a swallow.
"""


class ReproError(Exception):
    pass


class SolverBudgetError(ReproError):
    pass


class Stats:
    def __init__(self):
        self.fallback = []


def solve_step(budget):
    if budget <= 0:
        raise SolverBudgetError("out of budget")
    return budget


def execute(budget, stats):
    try:
        return solve_step(budget)
    except SolverBudgetError as exc:
        stats.fallback.append(str(exc))
        return 0
