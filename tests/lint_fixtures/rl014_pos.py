"""RL014 positive fixture: swallowed and orphaned solver failures.

``swallow`` catches the solver family and drops it on the floor (no
record, no re-raise); with no recording handler anywhere in the
project, the ``raise`` in ``solve_step`` also has no path into the
degradation ladder — two findings.
"""


class ReproError(Exception):
    pass


class SolverBudgetError(ReproError):
    pass


def solve_step(budget):
    if budget <= 0:
        raise SolverBudgetError("out of budget")
    return budget


def swallow(budget):
    try:
        return solve_step(budget)
    except SolverBudgetError:
        return None
