"""RL015 positive fixture: service-side writes outside the journal.

Treated as a ``repro.service`` file (package_override); every write
path below bypasses the journal's fsync discipline and must fire.
"""

import os
from pathlib import Path


def persist_state(path):
    with open(path, "w", encoding="utf-8") as handle:  # finding 1
        handle.write("{}")


def append_log(path, line):
    with open(path, mode="a") as handle:  # finding 2
        handle.write(line)


def raw_write(fd, data):
    os.write(fd, data)  # finding 3


def open_raw(path):
    return os.open(path, os.O_WRONLY)  # finding 4


def dump_text(path, text):
    Path(path).write_text(text)  # finding 5


def dump_bytes(path, blob):
    Path(path).write_bytes(blob)  # finding 6
