"""RL015 negative fixture: reads and journal-routed writes are fine."""

import json


def load_state(path):
    with open(path, encoding="utf-8") as handle:  # default mode: read
        return json.load(handle)


def load_binary(path):
    with open(path, "rb") as handle:  # explicit read mode
        return handle.read()


def open_dynamic(path, mode):
    return open(path, mode)  # non-literal mode: benefit of the doubt


def persist(engine, path):
    # The sanctioned path: write-then-rename-then-fsync via the journal.
    from repro.service.journal import atomic_write_text

    atomic_write_text(path, json.dumps({"slot": engine.slot}))
