"""RL010 negative: seeded initializers (or opaque splats) are fine."""
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor


def seed_worker(seed: int) -> None:
    pass


def presolve_seeded(shards, seed: int):
    with ProcessPoolExecutor(max_workers=4, initializer=seed_worker,
                             initargs=(seed,)) as pool:
        return list(pool.map(sum, shards))


def presolve_splat(shards, **kwargs):
    with ProcessPoolExecutor(**kwargs) as pool:
        return list(pool.map(sum, shards))


def threads_are_fine(shards):
    # Threads share the parent interpreter's (already linted) RNG state.
    with ThreadPoolExecutor(max_workers=4) as pool:
        return list(pool.map(sum, shards))
