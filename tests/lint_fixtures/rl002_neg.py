"""RL002 negative: monotonic clocks for solver budgets are allowed."""
import time


def solve_with_budget(budget_seconds: float) -> float:
    started = time.perf_counter()
    deadline = started + budget_seconds
    while time.perf_counter() < deadline:
        pass
    return time.perf_counter() - started
