"""RL007 positive: public core API with incomplete annotations."""


def solve(jobs, capacity: int):
    return capacity


class Planner:
    def plan(self, jobs, horizon: int = 0):
        return horizon
