"""RL002 positive: wall-clock reads in a deterministic path."""
import time
from datetime import datetime


def stamp_plan(plan: dict) -> dict:
    plan["computed_at"] = time.time()
    plan["day"] = datetime.now().isoformat()
    return plan
