"""Helper module: the laundering side of the cross-module fixture."""

import numpy as np


def fresh_stream():
    return np.random.default_rng()


def seeded_stream(seed):
    return np.random.default_rng(seed)
