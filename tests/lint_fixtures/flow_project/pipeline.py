"""Consumer module: draws from generators built in ``streams``.

``noisy_plan`` is the cross-module positive case — an unseeded
generator laundered through a helper *module* boundary, invisible to
any per-file rule.  ``seeded_plan`` is its seeded twin and must pass.
"""

from streams import fresh_stream, seeded_stream


def noisy_plan(jobs):
    rng = fresh_stream()
    return [job + rng.normal() for job in jobs]


def seeded_plan(jobs, seed):
    rng = seeded_stream(seed)
    return [job + rng.normal() for job in jobs]
