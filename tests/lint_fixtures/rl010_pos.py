"""RL010 positive: process pools forked without a seeding initializer."""
import concurrent.futures
from concurrent.futures import ProcessPoolExecutor


def presolve_unseeded(shards):
    with ProcessPoolExecutor(max_workers=4) as pool:
        return list(pool.map(sum, shards))


def presolve_unseeded_qualified(shards):
    with concurrent.futures.ProcessPoolExecutor(4) as pool:
        return list(pool.map(sum, shards))
