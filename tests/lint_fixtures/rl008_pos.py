"""RL008 positive: nondeterministic benchmark fixture."""
import time

import numpy as np
from numpy.random import default_rng


def make_workload():
    rng = default_rng()
    np.random.seed()
    return rng.random(), time.time()
