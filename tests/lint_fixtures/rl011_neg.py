"""RL011 negative fixture: every draw derives from a seeded parameter.

The same laundering shape as the positive fixture, but the generator is
constructed from a seed threaded through the call chain — provenance
resolves to a seeded parameter, so the pass stays silent.
"""

import numpy as np


def fresh_stream(seed):
    return np.random.default_rng(seed)


def jitter(values, seed):
    rng = fresh_stream(seed)
    return values + rng.normal()


def blessed_noise(rng):
    return rng.standard_normal(4).sum()
