"""RL004 negative: one unconditional decision draw per decision point."""


class GoodInjector:
    def on_slot(self, ctx):
        fired = self._fires(ctx)
        if ctx.now > 3 and fired:
            extra = float(self.vary.uniform(1.0, 2.0))
            ctx.record("good", "cluster", extra=extra)

    def on_launch(self, ctx, job, task):
        if self._fires(ctx) and task.duration > 1:
            task.fail_after = 1
