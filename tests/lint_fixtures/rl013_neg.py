"""RL013 negative fixture: picklable pure workers, seeded pool.

The worker is a module-level function of its arguments alone, and the
pool passes a seeding initializer — nothing escapes.
"""

from concurrent.futures import ProcessPoolExecutor

_SCALE = 2


def _seed_pool(seed):
    return seed


def _double(shard):
    return shard * _SCALE


def run(shards, seed):
    with ProcessPoolExecutor(initializer=_seed_pool,
                             initargs=(seed,)) as pool:
        return list(pool.map(_double, shards))
