"""RL005 negative: copies are mutated, shared views stay frozen."""
from dataclasses import dataclass

import numpy as np


def rescale(pmf):
    probs = np.array(pmf.probs, dtype=float)
    probs[0] = 0.0
    probs.sort()
    return probs


def freeze(arr):
    arr.setflags(write=False)
    return arr


@dataclass(frozen=True)
class Target:
    value: float

    def doubled(self) -> float:
        return self.value * 2.0
