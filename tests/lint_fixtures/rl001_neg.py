"""RL001 negative: all randomness flows through seeded generators."""
import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    children = np.random.SeedSequence(seed).spawn(1)
    return np.random.default_rng(children[0])


def draw_gap(rng: np.random.Generator, mean: float) -> float:
    return float(rng.exponential(mean))
