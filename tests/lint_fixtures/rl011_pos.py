"""RL011 positive fixture: unseeded provenance crossing call hops.

``fresh_stream`` launders an unseeded generator through a return value;
``legacy_noise`` derives from the hidden legacy global stream.  Both
draws must be reported with the full taint path.
"""

import numpy as np


def fresh_stream():
    return np.random.default_rng()


def jitter(values):
    rng = fresh_stream()
    return values + rng.normal()


def legacy_noise():
    draw = np.random.rand(4)
    return draw.sum()
