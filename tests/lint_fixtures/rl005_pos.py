"""RL005 positive: mutating shared read-only PMF state."""
from dataclasses import dataclass


def corrupt(pmf, arr):
    pmf.probs[0] = 0.5
    pmf.probs += 0.1
    arr.setflags(write=True)
    pmf.cdf().sort()


@dataclass(frozen=True)
class Target:
    value: float

    def bump(self):
        self.value += 1.0
