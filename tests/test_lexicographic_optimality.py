"""Brute-force validation of onion peeling's lexicographic optimality.

On instances small enough to enumerate every integer completion-time
assignment, the onion peeling algorithm's sorted utility vector must
match the true lexicographic max-min optimum — across *all* layers, not
just the first.  This is the strongest end-to-end correctness check of
the TAS solver.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Tuple

import numpy as np
import pytest

from repro.core.feasibility import staircase_feasible
from repro.core.onion import OnionJob, solve_onion
from repro.utility import LinearUtility

HORIZON = 12
CAPACITY = 2
#: Bisection tolerance plus the <= 1-slot integer-flooring loss, converted
#: to utility via the largest beta used below.
UTILITY_TOL = 0.005 + 1.0 * 0.3


def brute_force_vector(jobs: Sequence[OnionJob]) -> List[float]:
    """The lexicographically maximal sorted utility vector, by enumeration."""
    best: List[float] | None = None
    demands = [job.demand for job in jobs]
    for completions in itertools.product(range(1, HORIZON + 1),
                                         repeat=len(jobs)):
        if not staircase_feasible(zip(completions, demands), CAPACITY):
            continue
        vector = sorted(job.utility.value(t)
                        for job, t in zip(jobs, completions))
        if best is None or vector > best:
            best = vector
    assert best is not None, "instance must be feasible within the horizon"
    return best


def fuzzy_lex_match(achieved: Sequence[float], optimal: Sequence[float],
                    tol: float) -> None:
    """Assert ``achieved`` equals ``optimal`` lexicographically, within tol.

    Walking the sorted vectors from the minimum up: coordinates must agree
    within ``tol``; the first genuine disagreement in either direction is
    a failure (worse means suboptimal, better means the brute force or the
    feasibility model is wrong).
    """
    for position, (a, b) in enumerate(zip(achieved, optimal)):
        assert abs(a - b) <= tol, (
            f"coordinate {position}: achieved {a:.4f} vs optimal {b:.4f} "
            f"(full: {list(achieved)} vs {list(optimal)})")


@pytest.mark.parametrize("seed", range(8))
def test_onion_matches_bruteforce_lexicographic_optimum(seed):
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(3):
        demand = float(rng.integers(2, 9))
        budget = float(rng.integers(3, 11))
        priority = float(rng.integers(0, 4))
        beta = float(rng.uniform(0.1, 0.3))
        jobs.append(OnionJob(f"j{i}", demand,
                             LinearUtility(budget, priority, beta)))
    result = solve_onion(jobs, CAPACITY, tolerance=1e-3, horizon=HORIZON)
    achieved = result.utility_vector()
    optimal = brute_force_vector(jobs)
    fuzzy_lex_match(achieved, optimal, UTILITY_TOL)


def test_onion_with_two_heavily_contended_jobs():
    jobs = [
        OnionJob("a", 8, LinearUtility(4, 1.0, beta=0.25)),
        OnionJob("b", 8, LinearUtility(6, 1.0, beta=0.25)),
    ]
    result = solve_onion(jobs, CAPACITY, tolerance=1e-3, horizon=HORIZON)
    fuzzy_lex_match(result.utility_vector(), brute_force_vector(jobs),
                    UTILITY_TOL)


def test_onion_with_identical_jobs():
    jobs = [OnionJob(f"j{i}", 4, LinearUtility(5, 1.0, beta=0.2))
            for i in range(3)]
    result = solve_onion(jobs, CAPACITY, tolerance=1e-3, horizon=HORIZON)
    fuzzy_lex_match(result.utility_vector(), brute_force_vector(jobs),
                    UTILITY_TOL)
