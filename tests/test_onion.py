"""Tests for the onion peeling algorithm (Algorithm 3 / Theorem 2)."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, InfeasiblePlanError
from repro.core.onion import OnionJob, default_horizon, solve_onion
from repro.utility import (
    ConstantUtility,
    LinearUtility,
    SigmoidUtility,
    StepUtility,
)


def linear_job(job_id, demand, budget, priority=1.0, beta=1.0, **kw):
    return OnionJob(job_id, demand, LinearUtility(budget, priority, beta), **kw)


class TestValidation:
    def test_zero_capacity(self):
        with pytest.raises(InfeasiblePlanError):
            solve_onion([linear_job("a", 10, 10)], 0)

    def test_bad_tolerance(self):
        with pytest.raises(ConfigurationError):
            solve_onion([linear_job("a", 10, 10)], 1, tolerance=0)

    def test_duplicate_ids(self):
        with pytest.raises(ConfigurationError):
            solve_onion([linear_job("a", 10, 10), linear_job("a", 5, 5)], 1)

    def test_negative_demand(self):
        with pytest.raises(ConfigurationError):
            OnionJob("a", -1, LinearUtility(10, 1))

    def test_negative_elapsed(self):
        with pytest.raises(ConfigurationError):
            OnionJob("a", 1, LinearUtility(10, 1), elapsed=-1)

    def test_horizon_too_small(self):
        with pytest.raises(InfeasiblePlanError):
            solve_onion([linear_job("a", 100, 10)], 1, horizon=5)


class TestEmptyAndTrivial:
    def test_no_jobs(self):
        result = solve_onion([], 4)
        assert result.targets == {}

    def test_zero_demand_job_completes_now(self):
        result = solve_onion([linear_job("a", 0, budget=10, priority=2)], 4)
        target = result.targets["a"]
        assert target.target_completion == 0
        assert target.utility_value == pytest.approx(12.0)  # beta*B + W at t=0
        assert target.layer == 0

    def test_single_job_gets_earliest_possible(self):
        """One job, ample capacity: the target is near its best deadline."""
        result = solve_onion([linear_job("a", 10, budget=100, priority=5)], 10)
        target = result.targets["a"]
        # 10 slots of demand on 10 containers completes in 1 slot.
        assert 1 <= target.target_completion <= 2
        assert target.achievable


class TestCapacityPressure:
    def test_target_respects_capacity(self):
        """demand/capacity lower-bounds any job's completion-time."""
        result = solve_onion([linear_job("a", 100, budget=200, priority=1)], 4)
        assert result.targets["a"].target_completion >= 25

    def test_two_identical_jobs_share(self):
        jobs = [linear_job("a", 40, budget=100), linear_job("b", 40, budget=100)]
        result = solve_onion(jobs, 4)
        completions = sorted(t.target_completion for t in result.targets.values())
        # Both must fit 80 slots of demand on 4 containers: last one >= 20,
        # and once the bottleneck is peeled the survivor runs sooner.
        assert completions[-1] >= 20
        assert completions[0] <= completions[-1]
        # The max-min level: the worse job finishes at slot 20, worth
        # beta*(100-20) + 1 = 81.
        assert min(t.utility_value for t in result.targets.values()) == \
            pytest.approx(81.0, abs=1.5)

    def test_staircase_condition_holds_at_targets(self):
        """Theorem 2's condition (12) holds for the peeled targets."""
        rng = np.random.default_rng(7)
        jobs = [linear_job(f"j{i}", float(rng.integers(5, 80)),
                           budget=float(rng.integers(20, 120)),
                           priority=float(rng.integers(1, 6)))
                for i in range(12)]
        capacity = 4
        result = solve_onion(jobs, capacity)
        pairs = sorted(
            ((result.targets[j.job_id].target_completion, j.demand) for j in jobs))
        prefix = 0.0
        for completion, demand in pairs:
            prefix += demand
            assert prefix <= capacity * completion + 1e-6


class TestLexicographicBehaviour:
    def test_constant_jobs_are_deferred(self):
        """Insensitive jobs donate capacity and land at the horizon."""
        jobs = [
            OnionJob("flat", 40, ConstantUtility(5.0)),
            linear_job("tight", 40, budget=12, priority=1.0),
        ]
        result = solve_onion(jobs, 4, horizon=40)
        assert result.targets["flat"].target_completion == 40
        assert result.targets["tight"].target_completion <= 13
        assert result.targets["flat"].utility_value == 5.0

    def test_bottleneck_is_peeled_first(self):
        """The job that caps the max-min level leaves in layer 1."""
        jobs = [
            linear_job("huge", 200, budget=10, priority=1.0),   # hopeless
            linear_job("easy", 10, budget=100, priority=1.0),
        ]
        result = solve_onion(jobs, 2, horizon=200)
        assert result.targets["huge"].layer == 1
        assert result.targets["easy"].layer == 2
        assert result.targets["easy"].utility_value > \
            result.targets["huge"].utility_value

    def test_utility_vector_sorted(self):
        jobs = [linear_job(f"j{i}", 20 * (i + 1), budget=50) for i in range(4)]
        result = solve_onion(jobs, 3)
        vec = result.utility_vector()
        assert vec == sorted(vec)

    def test_expired_job_gets_zero_and_others_proceed(self):
        """A job past any useful deadline is sacrificed, not fatal."""
        jobs = [
            linear_job("late", 50, budget=5, priority=1.0, elapsed=100.0),
            linear_job("fresh", 20, budget=100, priority=1.0),
        ]
        result = solve_onion(jobs, 2, horizon=100)
        assert not result.targets["late"].achievable
        assert result.targets["fresh"].achievable

    def test_max_min_value_against_bruteforce(self):
        """Layer-1 utility matches a brute-force search over completions."""
        capacity = 2
        jobs = [
            linear_job("a", 6, budget=4, priority=2.0, beta=1.0),
            linear_job("b", 8, budget=6, priority=1.0, beta=1.0),
        ]
        horizon = 20
        result = solve_onion(jobs, capacity, horizon=horizon, tolerance=1e-4)

        best_minimum = -math.inf
        for ta, tb in itertools.product(range(1, horizon + 1), repeat=2):
            # check the staircase condition for the candidate completions
            order = sorted([(ta, 6.0), (tb, 8.0)])
            prefix, ok = 0.0, True
            for completion, demand in order:
                prefix += demand
                if prefix > capacity * completion:
                    ok = False
                    break
            if not ok:
                continue
            minimum = min(jobs[0].utility.value(ta), jobs[1].utility.value(tb))
            best_minimum = max(best_minimum, minimum)
        achieved = min(t.utility_value for t in result.targets.values())
        assert achieved >= best_minimum - 0.01  # within bisection tolerance


class TestElapsedAndCompensation:
    def test_elapsed_shrinks_deadline(self):
        fresh = solve_onion([linear_job("a", 10, budget=50)], 2, horizon=60)
        aged = solve_onion([linear_job("a", 10, budget=50, elapsed=30.0)], 2,
                           horizon=60)
        assert (aged.targets["a"].target_completion
                <= fresh.targets["a"].target_completion)

    def test_elapsed_affects_reported_utility(self):
        result = solve_onion([linear_job("a", 10, budget=50, priority=5,
                                         elapsed=30.0)], 2, horizon=60)
        target = result.targets["a"]
        expected = LinearUtility(50, 5).value(30.0 + target.target_completion)
        assert target.utility_value == pytest.approx(expected)

    def test_compensation_shrinks_deadline(self):
        plain = solve_onion([linear_job("a", 40, budget=50)], 2, horizon=60)
        padded = solve_onion([linear_job("a", 40, budget=50, compensation=10.0)],
                             2, horizon=60)
        assert (padded.targets["a"].target_completion
                <= plain.targets["a"].target_completion)


class TestStepUtilities:
    def test_step_deadline_enforced(self):
        jobs = [
            OnionJob("hard", 20, StepUtility(budget=10, priority=5)),
            OnionJob("soft", 20, LinearUtility(budget=40, priority=1)),
        ]
        result = solve_onion(jobs, 4, horizon=40)
        assert result.targets["hard"].target_completion <= 10
        assert result.targets["hard"].utility_value == 5.0


class TestDefaultHorizon:
    def test_fits_total_demand(self):
        jobs = [linear_job("a", 95, budget=10), linear_job("b", 55, budget=10)]
        horizon = default_horizon(jobs, 10)
        assert horizon >= 15

    def test_minimum_one(self):
        assert default_horizon([], 10) == 1


class TestScale:
    def test_many_jobs_terminate(self):
        rng = np.random.default_rng(0)
        jobs = []
        for i in range(60):
            kind = i % 3
            demand = float(rng.integers(10, 200))
            budget = float(rng.integers(30, 300))
            priority = float(rng.integers(1, 6))
            if kind == 0:
                utility = SigmoidUtility(budget, priority, beta=0.5)
            elif kind == 1:
                utility = SigmoidUtility(budget, priority, beta=0.05)
            else:
                utility = ConstantUtility(priority)
            jobs.append(OnionJob(f"j{i}", demand, utility))
        result = solve_onion(jobs, 16)
        assert len(result.targets) == 60
        assert result.layers <= 60
