"""Tests for the continuous time-slot mapping (Algorithm 4 / Theorem 3)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.core.mapping import ContainerPlan, MappingJob, map_time_slots


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            map_time_slots([], 0)

    def test_duplicate_ids(self):
        jobs = [MappingJob("a", 10, 2, 10), MappingJob("a", 5, 2, 10)]
        with pytest.raises(ConfigurationError):
            map_time_slots(jobs, 2)

    def test_bad_job_fields(self):
        with pytest.raises(ConfigurationError):
            MappingJob("a", -1, 2, 10)
        with pytest.raises(ConfigurationError):
            MappingJob("a", 1, 0, 10)
        with pytest.raises(ConfigurationError):
            MappingJob("a", 1, 2, -1)


class TestTaskCount:
    def test_exact_division(self):
        assert MappingJob("a", 10, 2, 10).task_count == 5

    def test_rounds_up(self):
        assert MappingJob("a", 11, 2, 10).task_count == 6

    def test_zero_demand(self):
        assert MappingJob("a", 0, 2, 10).task_count == 0


class TestBasicMapping:
    def test_empty(self):
        plan = map_time_slots([], 4)
        assert plan.makespan == 0.0
        assert plan.next_slot_allocation() == {}

    def test_zero_demand_job(self):
        plan = map_time_slots([MappingJob("a", 0, 2, 10)], 2)
        assert plan.completion("a") == 0.0

    def test_single_job_spreads_over_queues(self):
        # 8 tasks of runtime 5 and target 10: 2 tasks per queue, 4 queues.
        plan = map_time_slots([MappingJob("a", 40, 5, 10)], 4)
        assert plan.completion("a") == pytest.approx(10.0)
        assert plan.next_slot_allocation() == {"a": 4}

    def test_jobs_ordered_by_target(self):
        jobs = [
            MappingJob("late", 4, 2, 20),
            MappingJob("early", 4, 2, 4),
        ]
        plan = map_time_slots(jobs, 1)
        # 'early' occupies the queue head; 'late' is appended after it.
        assert plan.completion("early") <= plan.completion("late")
        assert plan.next_slot_allocation() == {"early": 1}

    def test_deterministic_tie_break(self):
        jobs = [MappingJob("b", 4, 2, 4), MappingJob("a", 4, 2, 4)]
        p1 = map_time_slots(jobs, 1)
        p2 = map_time_slots(list(reversed(jobs)), 1)
        assert p1.completions == p2.completions


class TestTheorem3Bound:
    """Feasible targets complete within T_i + R_i (Theorem 3)."""

    @staticmethod
    def _staircase_ok(jobs, capacity):
        prefix = 0.0
        for job in sorted(jobs, key=lambda j: j.target_completion):
            prefix += job.task_count * job.runtime
            if prefix > capacity * job.target_completion:
                return False
        return True

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=1, max_value=6),
           st.lists(st.tuples(st.floats(min_value=0.5, max_value=60.0),
                              st.floats(min_value=0.5, max_value=8.0),
                              st.integers(min_value=1, max_value=60)),
                    min_size=1, max_size=8))
    def test_bound_holds_for_feasible_targets(self, capacity, raw):
        jobs = [MappingJob(f"j{i}", demand, runtime, target)
                for i, (demand, runtime, target) in enumerate(raw)]
        if not self._staircase_ok(jobs, capacity):
            return  # Theorem 3's precondition (12) is violated
        plan = map_time_slots(jobs, capacity)
        assert not plan.overflowed
        for job in jobs:
            assert plan.completion(job.job_id) <= \
                job.target_completion + job.runtime + 1e-9

    def test_exact_fit_no_overshoot(self):
        # 4 tasks of runtime 5 exactly fill 2 queues to target 10.
        plan = map_time_slots([MappingJob("a", 20, 5, 10)], 2)
        assert plan.completion("a") == pytest.approx(10.0)

    def test_overshoot_at_most_one_runtime(self):
        # target 9 with runtime 5: the second task starts at 5 < 9 and
        # overshoots to 10 <= 9 + 5.
        plan = map_time_slots([MappingJob("a", 10, 5, 9)], 1)
        assert plan.completion("a") == pytest.approx(10.0)


class TestOverflow:
    def test_infeasible_targets_flagged(self):
        jobs = [MappingJob("a", 100, 5, 2)]  # impossible target
        plan = map_time_slots(jobs, 2)
        assert "a" in plan.overflowed
        assert plan.completion("a") > 2

    def test_overflow_balances_queues(self):
        plan = map_time_slots([MappingJob("a", 100, 5, 2)], 2)
        ends = {}
        for seg in plan.segments:
            ends[seg.queue] = max(ends.get(seg.queue, 0.0), seg.end)
        assert abs(ends[0] - ends[1]) <= 5.0 + 1e-9


class TestAllocationQueries:
    def test_allocation_at_times(self):
        jobs = [MappingJob("a", 8, 2, 4), MappingJob("b", 8, 2, 8)]
        plan = map_time_slots(jobs, 2)
        # 'a': 2 tasks per queue fill [0, 4); 'b' follows in [4, 8).
        assert plan.allocation_at(0.0) == {"a": 2}
        assert plan.allocation_at(3.9) == {"a": 2}
        assert plan.allocation_at(4.0) == {"b": 2}
        assert plan.allocation_at(100.0) == {}

    def test_capacity_never_exceeded(self):
        rng = np.random.default_rng(3)
        jobs = [MappingJob(f"j{i}", float(rng.integers(1, 50)),
                           float(rng.integers(1, 5)),
                           int(rng.integers(1, 30))) for i in range(10)]
        plan = map_time_slots(jobs, 3)
        for t in np.linspace(0, plan.makespan, 50):
            assert sum(plan.allocation_at(float(t)).values()) <= 3

    def test_segment_continuity_within_queue(self):
        """Queues are packed back-to-back: no gaps, no overlaps."""
        rng = np.random.default_rng(4)
        jobs = [MappingJob(f"j{i}", float(rng.integers(1, 40)),
                           float(rng.integers(1, 4)),
                           int(rng.integers(1, 25))) for i in range(8)]
        plan = map_time_slots(jobs, 2)
        per_queue = {}
        for seg in sorted(plan.segments, key=lambda s: (s.queue, s.start)):
            prev_end = per_queue.get(seg.queue, 0.0)
            assert seg.start == pytest.approx(prev_end)
            per_queue[seg.queue] = seg.end

    def test_total_work_conserved(self):
        jobs = [MappingJob("a", 17, 3, 10), MappingJob("b", 9, 2, 12)]
        plan = map_time_slots(jobs, 3)
        by_job = {}
        for seg in plan.segments:
            by_job[seg.job_id] = by_job.get(seg.job_id, 0) + seg.tasks
        assert by_job["a"] == MappingJob("a", 17, 3, 10).task_count
        assert by_job["b"] == MappingJob("b", 9, 2, 12).task_count
