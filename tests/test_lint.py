"""Tests for the rushlint static-analysis pass.

Covers, per ISSUE 3: one positive + one negative fixture per rule
(``tests/lint_fixtures/``), the suppression grammar, the JSON reporter
schema (pinned at version 1), CLI exit codes, and the self-check that
the shipped ``src/repro`` tree is rushlint-clean.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    RULE_REGISTRY,
    LintConfig,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.framework import SYNTAX_ERROR_ID, Finding
from repro.lint.reporters import JSON_SCHEMA_VERSION, render_json, render_text

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"

#: Context each rule needs, plus the exact finding count its positive
#: fixture is built to produce (pinned so rules can't silently decay).
RULE_CASES = {
    "RL001": (LintConfig(package_override="workload"), 2),
    "RL002": (LintConfig(package_override="core"), 2),
    "RL003": (LintConfig(), 2),
    "RL004": (LintConfig(package_override="faults"), 3),
    "RL005": (LintConfig(), 5),
    "RL006": (LintConfig(), 1),
    "RL007": (LintConfig(package_override="core"), 4),
    "RL008": (LintConfig(benchmark_override=True), 3),
    "RL009": (LintConfig(package_override="obs"), 2),
    "RL010": (LintConfig(package_override="core"), 2),
    "RL015": (LintConfig(package_override="service"), 6),
}


def _rule_findings(rule_id, kind):
    config, _ = RULE_CASES[rule_id]
    path = FIXTURES / f"{rule_id.lower()}_{kind}.py"
    return [f for f in lint_file(str(path), config=config)
            if f.rule_id == rule_id]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: Project-wide flow rules (RL011-RL014); their fixture-driven tests
#: live in tests/test_lint_flow.py, but the registry owns all fifteen.
FLOW_RULE_IDS = ("RL011", "RL012", "RL013", "RL014")


def test_registry_ships_the_fifteen_domain_rules():
    assert sorted(RULE_REGISTRY) == sorted(
        list(RULE_CASES) + list(FLOW_RULE_IDS))
    for rule_id, cls in RULE_REGISTRY.items():
        assert cls.rule_id == rule_id
        assert cls.name, rule_id
        assert cls.rationale, rule_id


def test_flow_rules_are_inert_in_per_file_mode():
    """Flow rules yield nothing from the per-file engine."""
    src = "import numpy as np\nrng = np.random.default_rng()\n"
    config = LintConfig(package_override="core",
                        select=frozenset(FLOW_RULE_IDS))
    assert lint_source(src, config=config) == []


# ---------------------------------------------------------------------------
# Per-rule fixtures: positive fires, negative stays silent
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("rule_id", sorted(RULE_CASES))
def test_positive_fixture_fires(rule_id):
    findings = _rule_findings(rule_id, "pos")
    assert len(findings) == RULE_CASES[rule_id][1]
    for finding in findings:
        assert finding.rule_id == rule_id
        assert finding.line >= 1
        assert finding.col >= 1
        assert finding.message


@pytest.mark.parametrize("rule_id", sorted(RULE_CASES))
def test_negative_fixture_is_silent(rule_id):
    assert _rule_findings(rule_id, "neg") == []


def test_findings_are_sorted_and_positioned():
    config, _ = RULE_CASES["RL005"]
    path = str(FIXTURES / "rl005_pos.py")
    findings = lint_file(path, config=config)
    assert findings == sorted(findings)
    rendered = findings[0].render()
    assert rendered.startswith(f"{path}:")
    assert ": RL005 " in rendered


def test_select_and_ignore_filters():
    config = LintConfig(package_override="core", select=frozenset({"RL002"}))
    path = str(FIXTURES / "rl002_pos.py")
    assert {f.rule_id for f in lint_file(path, config=config)} == {"RL002"}
    config = LintConfig(package_override="core", ignore=frozenset({"RL002"}))
    assert all(f.rule_id != "RL002" for f in lint_file(path, config=config))


def test_syntax_error_reports_rl000():
    findings = lint_source("def broken(:\n", path="broken.py")
    assert len(findings) == 1
    assert findings[0].rule_id == SYNTAX_ERROR_ID
    assert "syntax error" in findings[0].message


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

SNIPPET = "flag = job.utility_value == 0.0{trailer}\n"


def test_unsuppressed_snippet_fires():
    assert any(f.rule_id == "RL003"
               for f in lint_source(SNIPPET.format(trailer="")))


def test_trailing_suppression_silences_own_line():
    src = SNIPPET.format(
        trailer="  # rushlint: disable=RL003 (exact sentinel)")
    assert lint_source(src) == []


def test_standalone_suppression_applies_to_next_code_line():
    src = ("# rushlint: disable=RL003 (sentinel comparison, justified\n"
           "# at length over a second comment line)\n"
           "\n"
           + SNIPPET.format(trailer=""))
    assert lint_source(src) == []


def test_standalone_suppression_does_not_leak_past_its_line():
    src = ("# rushlint: disable=RL003 (only the first line)\n"
           + SNIPPET.format(trailer="")
           + "other = job.utility_value == 1.0\n")
    findings = lint_source(src)
    assert [f.line for f in findings if f.rule_id == "RL003"] == [3]


def test_disable_file_silences_whole_file():
    src = ("# rushlint: disable-file=RL003\n"
           + SNIPPET.format(trailer="")
           + "other = job.utility_value == 1.0\n")
    assert lint_source(src) == []


def test_disable_all_silences_every_rule():
    src = SNIPPET.format(trailer="  # rushlint: disable=all (test)")
    assert lint_source(src) == []


def test_suppression_inside_string_literal_is_ignored():
    src = ('note = "# rushlint: disable=RL003"\n'
           + SNIPPET.format(trailer=""))
    assert any(f.rule_id == "RL003" for f in lint_source(src))


def test_suppression_of_other_rule_does_not_silence():
    src = SNIPPET.format(trailer="  # rushlint: disable=RL001 (wrong id)")
    assert any(f.rule_id == "RL003" for f in lint_source(src))


def test_comma_list_suppresses_multiple_rules_on_one_line():
    src = ("import numpy as np\n"
           "rng = np.random.default_rng()"
           "  # rushlint: disable=RL001,RL003 (fixture)\n")
    config = LintConfig(package_override="core")
    assert [f for f in lint_source(src, config=config)
            if f.rule_id in ("RL001", "RL003")] == []


def test_comma_list_leaves_unlisted_rules_armed():
    src = SNIPPET.format(
        trailer="  # rushlint: disable=RL001,RL002 (wrong ids)")
    assert any(f.rule_id == "RL003" for f in lint_source(src))


DECORATED = ("import functools\n"
             "{directive}"
             "@functools.lru_cache(maxsize=None)\n"
             "def api(job):\n"
             "    return job\n")


def test_decorated_def_fires_without_suppression():
    src = DECORATED.format(directive="")
    config = LintConfig(package_override="core")
    findings = [f for f in lint_source(src, config=config)
                if f.rule_id == "RL007"]
    # Findings report at the `def` line, not the decorator line.
    assert findings and all(f.line == 3 for f in findings)


def test_standalone_suppression_covers_decorated_def():
    src = DECORATED.format(
        directive="# rushlint: disable=RL007 (fixture API)\n")
    config = LintConfig(package_override="core")
    assert [f for f in lint_source(src, config=config)
            if f.rule_id == "RL007"] == []


def test_standalone_suppression_covers_multiline_decorator():
    src = ("import functools\n"
           "# rushlint: disable=RL007 (fixture API)\n"
           "@functools.lru_cache(\n"
           "    maxsize=None,\n"
           ")\n"
           "def api(job):\n"
           "    return job\n")
    config = LintConfig(package_override="core")
    assert [f for f in lint_source(src, config=config)
            if f.rule_id == "RL007"] == []


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------

def _sample_findings():
    return [
        Finding(path="b.py", line=2, col=1, rule_id="RL003", message="m2"),
        Finding(path="a.py", line=9, col=5, rule_id="RL001", message="m1"),
    ]


def test_json_report_schema_v1():
    document = json.loads(render_json(_sample_findings(), checked_files=2))
    assert set(document) == {
        "version", "checked_files", "total", "counts", "findings"}
    assert document["version"] == JSON_SCHEMA_VERSION == 1
    assert document["checked_files"] == 2
    assert document["total"] == 2
    assert document["counts"] == {"RL001": 1, "RL003": 1}
    for entry in document["findings"]:
        assert set(entry) == {"rule", "path", "line", "col", "message"}
    # Findings are emitted sorted regardless of input order.
    assert [e["path"] for e in document["findings"]] == ["a.py", "b.py"]


def test_text_report_clean_and_dirty():
    assert render_text([], checked_files=3) == "clean: 0 findings in 3 files"
    dirty = render_text(_sample_findings(), checked_files=2)
    assert "b.py:2:1: RL003 m2" in dirty
    assert "2 finding(s) in 2 files (RL001: 1, RL003: 1)" in dirty


# ---------------------------------------------------------------------------
# CLI exit codes
# ---------------------------------------------------------------------------

def test_cli_exit_1_with_rule_and_location_on_findings(capsys):
    path = str(FIXTURES / "rl001_pos.py")
    code = main(["lint", path, "--as-package", "workload",
                 "--select", "RL001"])
    out = capsys.readouterr().out
    assert code == 1
    assert "RL001" in out
    assert f"{path}:8:" in out


def test_cli_exit_0_on_clean_tree(capsys):
    path = str(FIXTURES / "rl001_neg.py")
    code = main(["lint", path, "--as-package", "workload",
                 "--select", "RL001"])
    assert code == 0
    assert "clean: 0 findings in 1 file" in capsys.readouterr().out


def test_cli_exit_2_on_unknown_rule(capsys):
    code = main(["lint", str(FIXTURES), "--select", "RL999"])
    assert code == 2
    assert "unknown rule id" in capsys.readouterr().out


def test_cli_exit_2_on_missing_path(capsys):
    code = main(["lint", str(FIXTURES / "does_not_exist.py")])
    assert code == 2
    assert "no such path" in capsys.readouterr().out


def test_cli_json_format_parses(capsys):
    path = str(FIXTURES / "rl003_pos.py")
    code = main(["lint", path, "--format", "json", "--select", "RL003"])
    document = json.loads(capsys.readouterr().out)
    assert code == 1
    assert document["version"] == JSON_SCHEMA_VERSION
    assert document["counts"] == {"RL003": 2}


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in sorted(RULE_CASES):
        assert rule_id in out


def test_cli_as_benchmark_forces_rl008(capsys):
    path = str(FIXTURES / "rl008_pos.py")
    code = main(["lint", path, "--as-benchmark", "--select", "RL008"])
    assert code == 1
    assert "RL008" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Self-check: the shipped tree is rushlint-clean
# ---------------------------------------------------------------------------

def test_shipped_tree_is_rushlint_clean():
    findings = lint_paths([str(REPO_ROOT / "src" / "repro")])
    assert findings == [], "\n".join(f.render() for f in findings)


# ---------------------------------------------------------------------------
# RL003 assert exemption (test/benchmark files)
# ---------------------------------------------------------------------------

FLOAT_ASSERT = "def test_exact():\n    assert plan.utility_value == 0.75\n"


def test_rl003_exempts_asserts_in_test_files():
    """Exact equality inside ``assert`` is the determinism contract."""
    findings = lint_source(FLOAT_ASSERT, path="tests/test_golden.py")
    assert findings == []


def test_rl003_exempts_asserts_in_benchmark_files():
    findings = lint_source(FLOAT_ASSERT, path="benchmarks/bench_x.py")
    assert [f.rule_id for f in findings] == []


def test_rl003_still_fires_on_asserts_in_src():
    findings = lint_source(FLOAT_ASSERT, path="src/repro/core/plan.py")
    assert [f.rule_id for f in findings if f.rule_id == "RL003"] == ["RL003"]


def test_rl003_still_fires_outside_asserts_in_test_files():
    src = ("def helper(spec):\n"
           "    if spec.utility_value == 0.75:\n"
           "        return 1\n"
           "    return 0\n")
    findings = lint_source(src, path="tests/test_golden.py")
    assert [f.rule_id for f in findings] == ["RL003"]


def test_is_test_classification():
    config = LintConfig()
    assert config.is_test("tests/test_planner.py")
    assert config.is_test("test_planner.py")
    assert config.is_test("somewhere/tests/helpers.py")
    assert not config.is_test("src/repro/core/planner.py")
    assert not config.is_test("benchmarks/bench_planner.py")
