"""Hypothesis round-trip properties for the trace serialization layer.

``spec_to_dict`` / ``spec_from_dict`` and ``save_trace`` / ``load_trace``
must be lossless for every constructible :class:`JobSpec` — including
the edge values real configs produce: zero priorities, infinite budgets
(serialized as ``null``), NaN benchmark runtimes, piecewise utilities
with a single breakpoint, and unicode job ids.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.job import JobSpec
from repro.utility.constant import ConstantUtility
from repro.utility.linear import LinearUtility
from repro.utility.piecewise import PiecewiseUtility
from repro.utility.sigmoid import SigmoidUtility
from repro.utility.step import StepUtility
from repro.workload.trace import (load_trace, save_trace, spec_from_dict,
                                  spec_to_dict)

finite = dict(allow_nan=False, allow_infinity=False)

#: Positive floats in a range where JSON repr round-trips are exercised
#: across magnitudes (subnormals excluded; they are not config inputs).
positive = st.floats(min_value=1e-6, max_value=1e9, **finite)
non_negative = st.just(0.0) | positive

utilities = st.one_of(
    st.builds(ConstantUtility, priority=non_negative),
    st.builds(StepUtility, budget=non_negative, priority=positive),
    st.builds(LinearUtility, budget=non_negative, priority=non_negative,
              beta=positive),
    st.builds(SigmoidUtility, budget=non_negative, priority=positive,
              beta=st.floats(min_value=1e-3, max_value=50.0, **finite)),
    st.tuples(
        st.lists(non_negative, min_size=1, max_size=5, unique=True),
        st.lists(non_negative, min_size=5, max_size=5),
    ).map(lambda tu: PiecewiseUtility(list(zip(
        sorted(tu[0]), sorted(tu[1], reverse=True))))),
)

job_ids = st.text(
    st.characters(blacklist_categories=("Cs",)), min_size=1, max_size=24)

specs = st.builds(
    JobSpec,
    job_id=job_ids,
    arrival=st.integers(min_value=0, max_value=10**9),
    task_durations=st.lists(st.integers(min_value=1, max_value=10**5),
                            min_size=1, max_size=6).map(tuple),
    utility=utilities,
    priority=non_negative,
    budget=st.just(math.inf) | positive,
    benchmark_runtime=st.just(math.nan) | positive,
    sensitivity=st.sampled_from(["critical", "sensitive", "insensitive"]),
    template=st.text(max_size=16),
    prior_runtime=st.none() | positive,
    failure_prob=st.floats(min_value=0.0, max_value=0.99, **finite),
)


class TestDictRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(specs)
    def test_spec_dict_round_trip_is_lossless(self, spec):
        clone = spec_from_dict(spec_to_dict(spec))
        assert spec_to_dict(clone) == spec_to_dict(spec)
        assert clone.task_durations == spec.task_durations

    @settings(max_examples=100, deadline=None)
    @given(specs)
    def test_round_trip_preserves_utility_semantics(self, spec):
        clone = spec_from_dict(spec_to_dict(spec))
        for t in (0.0, spec.budget if math.isfinite(spec.budget) else 1e6,
                  123.456):
            assert clone.utility.value(t) == spec.utility.value(t)


class TestFileRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(spec_list=st.lists(specs, min_size=1, max_size=5,
                              unique_by=lambda s: s.job_id))
    def test_save_load_save_is_byte_stable(self, tmp_path_factory, spec_list):
        tmp = tmp_path_factory.mktemp("trace")
        first, second = tmp / "a.jsonl", tmp / "b.jsonl"
        save_trace(spec_list, first)
        loaded = load_trace(first)
        save_trace(loaded, second)
        assert first.read_bytes() == second.read_bytes()
        assert [spec_to_dict(s) for s in loaded] == [
            spec_to_dict(s) for s in spec_list]


class TestEdgeValues:
    """Deliberate boundary cases, pinned outside the property search."""

    def edge_specs(self):
        yield JobSpec("zero-priority", 0, (1,),
                      ConstantUtility(priority=0.0), priority=0.0)
        yield JobSpec("infinite-budget", 0, (1, 1),
                      StepUtility(budget=0.0, priority=1e-6),
                      budget=math.inf, benchmark_runtime=math.nan)
        yield JobSpec("one-breakpoint", 10**9, (10**5,),
                      PiecewiseUtility([(0.0, 0.0)]),
                      prior_runtime=1e-6, failure_prob=0.99)
        yield JobSpec("unicode-θδ", 1, (1,),
                      SigmoidUtility(budget=0.0, priority=1e-9, beta=50.0),
                      template="θ-template")

    def test_edge_specs_round_trip(self, tmp_path):
        originals = list(self.edge_specs())
        path = tmp_path / "edges.jsonl"
        save_trace(originals, path)
        loaded = load_trace(path)
        assert [spec_to_dict(s) for s in loaded] == [
            spec_to_dict(s) for s in originals]
        rewritten = tmp_path / "edges2.jsonl"
        save_trace(loaded, rewritten)
        assert path.read_bytes() == rewritten.read_bytes()

    def test_infinite_budget_serializes_as_null(self):
        data = spec_to_dict(JobSpec("inf", 0, (1,),
                                    ConstantUtility(priority=1.0)))
        assert data["budget"] is None
        assert data["benchmark_runtime"] is None
        clone = spec_from_dict(data)
        assert clone.budget == math.inf
        assert math.isnan(clone.benchmark_runtime)
