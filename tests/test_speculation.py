"""Tests for speculative execution (duplicate attempts racing stragglers)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.cluster import JobSpec, SimJob, Task, TaskState, run_simulation
from repro.schedulers import FifoScheduler, RushScheduler
from repro.schedulers.speculative import SpeculativeScheduler
from repro.utility import LinearUtility


def spec(job_id="j", durations=(5, 5), **kw):
    return JobSpec(job_id=job_id, arrival=kw.pop("arrival", 0),
                   task_durations=tuple(durations),
                   utility=LinearUtility(kw.pop("budget", 200.0), 1.0),
                   budget=200.0, **kw)


class TestTaskCancel:
    def test_cancel_running(self):
        task = Task("t", "j", duration=5)
        task.launch(0)
        task.cancel()
        assert task.state is TaskState.CANCELLED

    def test_cancel_pending_allowed(self):
        task = Task("t", "j", duration=5)
        task.cancel()
        assert task.state is TaskState.CANCELLED

    def test_cancel_completed_rejected(self):
        task = Task("t", "j", duration=1)
        task.launch(0)
        task.advance(0)
        with pytest.raises(SimulationError):
            task.cancel()

    def test_logical_id_derivation(self):
        assert Task("j/t3", "j", duration=1).logical_id == "j/t3"
        assert Task("j/t3#2", "j", duration=1).logical_id == "j/t3"
        assert Task("j/t3~s1", "j", duration=1).logical_id == "j/t3"


class TestSimJobSpeculation:
    def test_speculate_creates_pending_duplicate(self):
        job = SimJob(spec(durations=(10,)))
        original = job.next_pending()
        original.launch(0)
        job.note_launched()
        duplicate = job.speculate(original.logical_id, duration=3)
        assert job.pending_count == 1
        assert job.has_duplicate(original.logical_id)
        assert duplicate.logical_id == original.logical_id
        assert duplicate.duration == 3

    def test_cannot_speculate_completed_task(self):
        job = SimJob(spec(durations=(1,)))
        task = job.next_pending()
        task.launch(0)
        job.note_launched()
        task.advance(0)
        job.note_completed(task)
        with pytest.raises(ConfigurationError):
            job.speculate(task.logical_id, duration=1)

    def test_cannot_speculate_unknown_task(self):
        job = SimJob(spec(durations=(1,)))
        with pytest.raises(ConfigurationError):
            job.speculate("ghost", duration=1)

    def test_duplicate_completion_counts_once(self):
        job = SimJob(spec(durations=(4,)))
        original = job.next_pending()
        original.launch(0)
        job.note_launched()
        duplicate = job.speculate(original.logical_id, duration=4)
        launched = job.next_pending()
        assert launched is duplicate
        duplicate.launch(0)
        job.note_launched()
        for t in range(4):
            original.advance(t)
            duplicate.advance(t)
        assert job.note_completed(original)
        assert not job.note_completed(duplicate)  # same slot: loser discarded
        assert job.completed_count == 1
        assert job.is_complete

    def test_failed_attempt_with_live_sibling_skips_retry(self):
        job = SimJob(spec(durations=(6,)))
        original = job.next_pending()
        original.fail_after = 1
        original.launch(0)
        job.note_launched()
        job.speculate(original.logical_id, duration=6)
        original.advance(0)
        assert job.note_failed(original) is None  # sibling still live
        assert job.pending_count == 1  # only the duplicate


class TestSpeculativeScheduler:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SpeculativeScheduler(FifoScheduler(), slowdown_threshold=1.0)
        with pytest.raises(ConfigurationError):
            SpeculativeScheduler(FifoScheduler(), min_samples=0)

    def test_name_reflects_base(self):
        assert SpeculativeScheduler(FifoScheduler()).name == "FIFO+spec"

    def test_straggler_is_clipped(self):
        """A lone extreme straggler is raced and the job finishes early."""
        durations = (5,) * 7 + (60,)
        plain = run_simulation([spec(durations=durations)], 2,
                               FifoScheduler())
        fast = run_simulation([spec(durations=durations)], 2,
                              SpeculativeScheduler(FifoScheduler()))
        assert fast.speculative_launches >= 1
        assert fast.records[0].runtime < plain.records[0].runtime

    def test_no_speculation_without_samples(self):
        """min_samples gates speculation: a single task is never raced."""
        result = run_simulation([spec(durations=(40,))], 2,
                                SpeculativeScheduler(FifoScheduler()))
        assert result.speculative_launches == 0

    def test_no_duplicate_of_a_duplicate(self):
        durations = (5,) * 7 + (200,)
        result = run_simulation([spec(durations=durations)], 3,
                                SpeculativeScheduler(FifoScheduler()))
        # the straggler is raced exactly once (duplicate finishes quickly)
        assert result.speculative_launches == 1

    def test_works_with_rush_base(self):
        durations = (5,) * 7 + (60,)
        result = run_simulation(
            [spec(durations=durations, prior_runtime=5.0)], 2,
            SpeculativeScheduler(RushScheduler()))
        assert result.completed_count == 1
        assert result.scheduler_name == "RUSH+spec"

    def test_work_not_conserved_but_bounded(self):
        """Speculation burns extra container-slots, but only while racing."""
        durations = (5,) * 7 + (60,)
        plain = run_simulation([spec(durations=durations)], 2,
                               FifoScheduler())
        fast = run_simulation([spec(durations=durations)], 2,
                              SpeculativeScheduler(FifoScheduler()))
        total_work = sum(durations)
        assert plain.busy_container_slots == total_work
        assert fast.busy_container_slots != total_work  # raced work differs
        # wasted work is bounded by the straggler's clipped duration
        assert abs(fast.busy_container_slots - total_work) <= 60
