"""Tests for the project-wide dataflow engine (``rush lint --flow``).

Covers, per ISSUE 8: positive + negative fixtures for each flow rule
RL011-RL014, multi-hop taint paths with file:line hops, the
cross-module laundering fixture (unseeded caught, seeded twin passes),
file-level suppressions that must not leak through the shared index,
the content-hash symbol cache, the ``lint_baseline.json`` ratchet, and
the CLI surface (``--flow``/``--baseline``/``--update-baseline``/
``--flow-cache``/``--exclude``).
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import LintConfig, lint_project
from repro.lint.flow.baseline import (Baseline, compare_to_baseline,
                                      load_baseline, write_baseline)
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.symbols import (build_index, extract_module,
                                     module_name_for)
from repro.lint.flow.taint import analyze_taint

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"

#: Flow rule -> (config, pinned positive-fixture finding count).
FLOW_RULE_CASES = {
    "RL011": (LintConfig(package_override="core"), 2),
    "RL012": (LintConfig(package_override="core"), 2),
    "RL013": (LintConfig(package_override="core"), 3),
    "RL014": (LintConfig(package_override="core"), 2),
}


def _flow_findings(rule_id, kind):
    config, _ = FLOW_RULE_CASES[rule_id]
    config = LintConfig(package_override=config.package_override,
                        select=frozenset({rule_id}))
    path = FIXTURES / f"{rule_id.lower()}_{kind}.py"
    return lint_project([str(path)], config=config)


# ---------------------------------------------------------------------------
# Per-rule fixtures
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("rule_id", sorted(FLOW_RULE_CASES))
def test_positive_fixture_fires(rule_id):
    findings = _flow_findings(rule_id, "pos")
    assert len(findings) == FLOW_RULE_CASES[rule_id][1]
    for finding in findings:
        assert finding.rule_id == rule_id
        assert finding.line >= 1
        assert finding.message


@pytest.mark.parametrize("rule_id", sorted(FLOW_RULE_CASES))
def test_negative_fixture_is_silent(rule_id):
    assert _flow_findings(rule_id, "neg") == []


def test_taint_finding_renders_multi_hop_path():
    findings = _flow_findings("RL011", "pos")
    laundered = [f for f in findings if "fresh_stream" not in f.message
                 and "default_rng" in f.message]
    assert laundered, [f.message for f in findings]
    message = laundered[0].message
    # Three hops, each with file:line — source, return, sink.
    assert message.count("rl011_pos.py:") >= 3
    assert "entropy source" in message
    assert "returned to caller" in message
    assert " -> " in message


def test_purity_finding_names_the_witness_chain():
    findings = _flow_findings("RL012", "pos")
    assert any("rl012_pos.plan -> rl012_pos._stamp" in f.message
               for f in findings)


def test_pool_escape_flags_lambda_and_global_touches():
    messages = [f.message for f in _flow_findings("RL013", "pos")]
    assert any("lambda" in m for m in messages)
    assert any("reads mutable module global '_RESULTS'" in m
               for m in messages)
    assert any("writes module global '_RESULTS'" in m for m in messages)


def test_exception_flow_flags_swallow_and_orphan():
    messages = [f.message for f in _flow_findings("RL014", "pos")]
    assert any("no path into the degradation ladder" in m
               for m in messages)
    assert any("without recording a fallback" in m for m in messages)


# ---------------------------------------------------------------------------
# Cross-module laundering (the headline acceptance case)
# ---------------------------------------------------------------------------

def _flow_project_findings():
    config = LintConfig(package_override="core",
                        select=frozenset({"RL011"}))
    return lint_project([str(FIXTURES / "flow_project")], config=config)


def test_cross_module_laundering_is_caught():
    findings = _flow_project_findings()
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path.endswith("pipeline.py")
    # The taint path crosses the module boundary with file:line hops.
    assert "streams.py:" in finding.message
    assert "pipeline.py:" in finding.message
    assert "unseeded default_rng() entropy source" in finding.message


def test_seeded_twin_passes():
    findings = _flow_project_findings()
    # seeded_plan (lines 17-19) must produce nothing.
    assert all(f.line < 15 for f in findings)


def test_file_level_suppression_does_not_leak_to_sibling():
    config = LintConfig(package_override="core",
                        select=frozenset({"RL011"}))
    findings = lint_project([str(FIXTURES / "flow_leak")], config=config)
    assert [Path(f.path).name for f in findings] == ["sibling.py"]


def test_line_suppression_silences_flow_finding(tmp_path):
    source = ("import numpy as np\n"
              "def draw():\n"
              "    rng = np.random.default_rng()\n"
              "    return rng.normal()"
              "  # rushlint: disable=RL011 (fixture)\n")
    target = tmp_path / "mod.py"
    target.write_text(source)
    config = LintConfig(package_override="core",
                        select=frozenset({"RL011"}))
    assert lint_project([str(target)], config=config) == []


# ---------------------------------------------------------------------------
# Symbol index + cache
# ---------------------------------------------------------------------------

def test_module_name_for_repro_and_flat_paths():
    assert module_name_for("src/repro/core/wcde.py") == "repro.core.wcde"
    assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"
    assert module_name_for("/tmp/fix/helpers.py") == "helpers"


def test_summary_captures_imports_globals_and_suppressions(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "# rushlint: disable-file=RL012\n"
        "import numpy as np\n"
        "from concurrent.futures import ProcessPoolExecutor\n"
        "TABLE = {}\n"
        "LIMIT = 3\n"
        "def f(x):\n"
        "    return x\n")
    summary = extract_module(str(target))
    assert summary.imports["np"] == "numpy"
    assert summary.globals["TABLE"] == "mutable"
    assert summary.globals["LIMIT"] == "other"
    assert summary.suppress_file == ["RL012"]
    assert summary.suppressed("RL012", 99)
    assert not summary.suppressed("RL011", 99)
    assert "f" in summary.functions


def test_cache_round_trip_and_invalidation(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("def f():\n    return 1\n")
    cache = tmp_path / "cache.json"
    index1 = build_index([str(target)], cache_path=str(cache))
    assert cache.exists()
    sha1 = index1.modules["mod"].sha
    # Warm run: summary comes back identical from the cache.
    index2 = build_index([str(target)], cache_path=str(cache))
    assert index2.modules["mod"].sha == sha1
    assert index2.modules["mod"].to_dict() == index1.modules["mod"].to_dict()
    # Edit invalidates just that entry.
    target.write_text("def f():\n    return 2\n")
    index3 = build_index([str(target)], cache_path=str(cache))
    assert index3.modules["mod"].sha != sha1


def test_warm_run_produces_identical_findings(tmp_path):
    cache = tmp_path / "cache.json"
    config = LintConfig(package_override="core",
                        select=frozenset({"RL011"}))
    paths = [str(FIXTURES / "flow_project")]
    cold = lint_project(paths, config=config, cache_path=str(cache))
    warm = lint_project(paths, config=config, cache_path=str(cache))
    assert cold == warm and len(cold) == 1


def test_corrupt_cache_is_ignored(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("def f():\n    return 1\n")
    cache = tmp_path / "cache.json"
    cache.write_text("{not json")
    index = build_index([str(target)], cache_path=str(cache))
    assert "mod" in index.modules


def test_syntax_error_reports_rl000(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def broken(:\n")
    findings = lint_project([str(target)])
    assert [f.rule_id for f in findings] == ["RL000"]


# ---------------------------------------------------------------------------
# Call graph
# ---------------------------------------------------------------------------

def test_callgraph_resolves_reexports(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("from pkg.inner import solve\n")
    (pkg / "inner.py").write_text("def solve():\n    return 1\n")
    (tmp_path / "user.py").write_text(
        "import pkg\n"
        "def run():\n"
        "    return pkg.solve()\n")
    index = build_index([str(tmp_path)])
    graph = CallGraph(index)
    assert graph.resolve("pkg.solve") == "pkg.inner.solve"
    assert ("pkg.inner.solve", 3) in graph.edges["user.run"]


def test_reachability_returns_witness_chain():
    index = build_index([str(FIXTURES / "rl012_pos.py")])
    graph = CallGraph(index)
    parents = graph.reachable_from(["rl012_pos.plan"])
    assert "rl012_pos._stamp" in parents
    chain = graph.chain_to_root("rl012_pos._stamp", parents)
    assert chain == ["rl012_pos.plan", "rl012_pos._stamp"]


def test_taint_is_config_independent():
    index = build_index([str(FIXTURES / "flow_project")])
    analysis = analyze_taint(CallGraph(index))
    assert len(analysis.findings) == 1
    assert analysis.findings[0].chain[0][2].startswith("unseeded")


# ---------------------------------------------------------------------------
# Baseline ratchet
# ---------------------------------------------------------------------------

def _project_findings():
    config = LintConfig(package_override="core",
                        select=frozenset({"RL011"}))
    return lint_project([str(FIXTURES / "flow_project")], config=config)


def test_baseline_round_trip(tmp_path):
    findings = _project_findings()
    path = tmp_path / "baseline.json"
    written = write_baseline(findings, str(path))
    loaded = load_baseline(str(path))
    assert loaded.counts == written.counts
    new, notes = compare_to_baseline(findings, loaded)
    assert new == [] and notes == []


def test_baseline_flags_only_excess_findings(tmp_path):
    findings = _project_findings()
    new, _ = compare_to_baseline(findings, Baseline())
    assert new == findings  # empty baseline tolerates nothing
    path = tmp_path / "baseline.json"
    write_baseline(findings, str(path))
    # Same findings again: fully ratcheted, nothing new.
    new, _ = compare_to_baseline(findings, load_baseline(str(path)))
    assert new == []


def test_baseline_notes_overcounted_entries(tmp_path):
    findings = _project_findings()
    baseline = Baseline(counts={(findings[0].rule_id,
                                 findings[0].path): 5})
    new, notes = compare_to_baseline(findings, baseline)
    assert new == []
    assert notes and "ratchet down" in notes[0]


def test_baseline_preserves_justifications(tmp_path):
    findings = _project_findings()
    path = tmp_path / "baseline.json"
    write_baseline(findings, str(path))
    payload = json.loads(path.read_text())
    payload["entries"][0]["justification"] = "known laundering fixture"
    path.write_text(json.dumps(payload))
    write_baseline(findings, str(path),
                   previous=load_baseline(str(path)))
    payload = json.loads(path.read_text())
    assert payload["entries"][0]["justification"] == (
        "known laundering fixture")


def test_missing_baseline_is_empty():
    assert load_baseline("/nonexistent/baseline.json").counts == {}


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

def test_cli_flow_exit_1_on_findings(capsys):
    code = main(["lint", "--flow", str(FIXTURES / "flow_project"),
                 "--as-package", "core", "--select", "RL011"])
    out = capsys.readouterr().out
    assert code == 1
    assert "RL011" in out and "taint path" in out


def test_cli_flow_exit_0_on_clean_tree(capsys):
    code = main(["lint", "--flow", str(FIXTURES / "rl011_neg.py"),
                 "--as-package", "core", "--select", "RL011"])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_flow_baseline_ratchet(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    args = ["lint", "--flow", str(FIXTURES / "flow_project"),
            "--as-package", "core", "--select", "RL011",
            "--baseline", str(baseline)]
    # Update writes the baseline and exits 0.
    assert main(args + ["--update-baseline"]) == 0
    capsys.readouterr()
    # Ratcheted: same findings now pass.
    assert main(args) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_flow_cache_warm_run(tmp_path, capsys):
    cache = tmp_path / "cache.json"
    args = ["lint", "--flow", str(FIXTURES / "flow_project"),
            "--as-package", "core", "--select", "RL011",
            "--flow-cache", str(cache)]
    first = main(args)
    capsys.readouterr()
    assert cache.exists()
    assert main(args) == first == 1


def test_cli_exclude_skips_matching_files(capsys):
    code = main(["lint", "--flow", str(FIXTURES / "flow_leak"),
                 "--as-package", "core", "--select", "RL011",
                 "--exclude", "sibling"])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_update_baseline_requires_flow_and_baseline(capsys):
    assert main(["lint", "--update-baseline", "src"]) == 2
    assert "requires --flow" in capsys.readouterr().out


def test_cli_baseline_requires_flow(capsys):
    assert main(["lint", "--baseline", "x.json", "src"]) == 2
    assert "only apply to --flow" in capsys.readouterr().out


def test_cli_flow_json_format(capsys):
    code = main(["lint", "--flow", str(FIXTURES / "flow_project"),
                 "--as-package", "core", "--select", "RL011",
                 "--format", "json"])
    document = json.loads(capsys.readouterr().out)
    assert code == 1
    assert document["counts"] == {"RL011": 1}


# ---------------------------------------------------------------------------
# Self-check: the shipped tree is flow-clean against the baseline
# ---------------------------------------------------------------------------

def test_shipped_tree_is_flow_clean_against_baseline():
    config = LintConfig()
    findings = lint_project([str(REPO_ROOT / "src" / "repro")],
                            config=config)
    baseline = load_baseline(str(REPO_ROOT / "lint_baseline.json"))
    new, _notes = compare_to_baseline(findings, baseline)
    assert new == [], "\n".join(f.render() for f in new)
