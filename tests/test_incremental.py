"""The incremental planning engine: memo, presolve and dirty tracking.

Three layers of guarantees:

* :class:`~repro.core.wcde.WcdeCache` is a content-addressed, bounded
  LRU whose hits return the exact solve result, and the lazy
  ``worst_pmf`` matches the eager solve;
* :class:`~repro.core.planner.IncrementalPlanner` (without the
  approximate warm start) is *bit-identical* to the stateless cold
  planner — same robust demands, targets and next-slot grants — under
  hypothesis-fuzzed job sets and arbitrary estimate-churn sequences;
* :class:`~repro.schedulers.rush.RushScheduler` invalidates its cached
  per-job estimates exactly when the paper's feedback cycle demands:
  on arrival, task launch, completion and failure — and only then.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    IncrementalPlanner,
    LinearUtility,
    PlannerJob,
    RushPlanner,
    RushScheduler,
    SigmoidUtility,
    WcdeCache,
)
from repro.core.rem import rem_min_kl_from_cdf
from repro.core.wcde import solve_wcde
from repro.errors import ConfigurationError
from repro.estimation import DemandEstimate, Pmf

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

pmfs = st.builds(
    lambda mean, std: Pmf.from_gaussian(
        mean, std, tau_max=int(mean + 6 * std) + 2),
    mean=st.floats(min_value=1, max_value=150),
    std=st.floats(min_value=0, max_value=25))

estimates = st.builds(
    lambda pmf, width, runtime: DemandEstimate(
        pmf=pmf, bin_width=width, container_runtime=runtime, sample_count=5),
    pmf=pmfs,
    width=st.sampled_from([1.0, 2.0]),
    runtime=st.floats(min_value=0.5, max_value=20))

utilities = st.one_of(
    st.builds(LinearUtility,
              budget=st.floats(min_value=1, max_value=500),
              priority=st.floats(min_value=0.1, max_value=10)),
    st.builds(SigmoidUtility,
              budget=st.floats(min_value=1, max_value=500),
              priority=st.floats(min_value=0.1, max_value=10),
              beta=st.floats(min_value=0.01, max_value=1)))

job_sets = st.lists(
    st.tuples(utilities, estimates,
              st.floats(min_value=0, max_value=80),    # elapsed
              st.floats(min_value=0, max_value=40)),   # extra_demand
    min_size=1, max_size=6)


def build_jobs(raw):
    return [PlannerJob(f"j{i}", u, e, elapsed=el, extra_demand=ex)
            for i, (u, e, el, ex) in enumerate(raw)]


def plans_equal(a, b) -> bool:
    if set(a.jobs) != set(b.jobs):
        return False
    for job_id, pa in a.jobs.items():
        pb = b.jobs[job_id]
        if (pa.robust_demand, pa.reference_demand, pa.target_completion,
                pa.planned_completion, pa.predicted_utility, pa.layer) != \
           (pb.robust_demand, pb.reference_demand, pb.target_completion,
                pb.planned_completion, pb.predicted_utility, pb.layer):
            return False
    return a.next_slot_allocation() == b.next_slot_allocation()


# ---------------------------------------------------------------------------
# WcdeCache
# ---------------------------------------------------------------------------

class TestWcdeCache:
    def test_hit_returns_shared_result(self):
        cache = WcdeCache()
        pmf = Pmf.from_gaussian(40, 8, tau_max=100)
        first = cache.solve(pmf, 0.9, 0.7)
        second = cache.solve(pmf, 0.9, 0.7)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)
        assert first.eta_bin == solve_wcde(pmf, 0.9, 0.7).eta_bin

    def test_content_addressing_across_objects(self):
        """Equal distributions share an entry even as distinct objects."""
        cache = WcdeCache()
        probs = Pmf.from_gaussian(40, 8, tau_max=100).probs
        a, b = Pmf(probs), Pmf(probs)
        assert a is not b
        cache.solve(a, 0.9, 0.7)
        cache.solve(b, 0.9, 0.7)
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_distinct_theta_delta_are_distinct_entries(self):
        cache = WcdeCache()
        pmf = Pmf.from_gaussian(40, 8, tau_max=100)
        cache.solve(pmf, 0.9, 0.7)
        cache.solve(pmf, 0.8, 0.7)
        cache.solve(pmf, 0.9, 0.3)
        assert cache.misses == 3 and cache.hits == 0
        assert len(cache) == 3

    def test_lru_eviction_bound(self):
        cache = WcdeCache(maxsize=2)
        pmf_a = Pmf.from_gaussian(30, 5, tau_max=80)
        pmf_b = Pmf.from_gaussian(50, 5, tau_max=120)
        pmf_c = Pmf.from_gaussian(70, 5, tau_max=160)
        cache.solve(pmf_a, 0.9, 0.7)
        cache.solve(pmf_b, 0.9, 0.7)
        cache.solve(pmf_a, 0.9, 0.7)      # refresh a; b is now LRU
        cache.solve(pmf_c, 0.9, 0.7)      # evicts b
        assert len(cache) == 2
        cache.solve(pmf_a, 0.9, 0.7)
        assert cache.hits == 2            # a stayed resident
        cache.solve(pmf_b, 0.9, 0.7)      # b was evicted: a miss
        assert cache.misses == 4

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ConfigurationError):
            WcdeCache(maxsize=0)
        with pytest.raises(ConfigurationError):
            WcdeCache(maxsize=-3)

    def test_clear_resets_entries_and_counters(self):
        cache = WcdeCache()
        pmf = Pmf.from_gaussian(40, 8, tau_max=100)
        cache.solve(pmf, 0.9, 0.7)
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)

    @settings(max_examples=40, deadline=None)
    @given(pmfs, st.floats(min_value=0.05, max_value=0.999),
           st.floats(min_value=0.0, max_value=1.5))
    def test_lazy_worst_pmf_matches_eager(self, pmf, theta, delta):
        lazy = solve_wcde(pmf, theta, delta, need_worst_pmf=False)
        eager = solve_wcde(pmf, theta, delta, need_worst_pmf=True)
        assert lazy.eta_bin == eager.eta_bin
        assert lazy.reference_quantile == eager.reference_quantile
        assert lazy.worst_kl == eager.worst_kl
        assert np.array_equal(lazy.worst_pmf.probs,
                              eager.worst_pmf.probs)

    @settings(max_examples=40, deadline=None)
    @given(pmfs, st.floats(min_value=0.05, max_value=0.999),
           st.floats(min_value=0.0, max_value=1.5))
    def test_eta_matches_linear_scan(self, pmf, theta, delta):
        """Bisection + vectorized scan agree with the brute-force answer."""
        eta = solve_wcde(pmf, theta, delta).eta_bin
        anchor = pmf.quantile(theta)
        ceiling = pmf.support_max()
        cdf = pmf.cdf()
        brute = anchor
        # The g(L) <= delta feasibility rule only holds for a positive
        # KL budget: pushing CDF(L) *strictly* below theta costs
        # arbitrarily close to g(L) but always more than zero, so at
        # delta == 0 the adversary is pinned to the reference quantile
        # even when some g(L) == 0 exactly (a CDF value tied at theta).
        if delta > 0.0:
            for level in range(ceiling - 1, anchor - 1, -1):
                if (rem_min_kl_from_cdf(float(cdf[level]), theta)
                        <= delta + 1e-12):
                    brute = max(level + 1, anchor)
                    break
        if theta >= 1.0:
            brute = ceiling
        assert eta == brute


# ---------------------------------------------------------------------------
# IncrementalPlanner == cold planner, bit for bit
# ---------------------------------------------------------------------------

class TestIncrementalEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(job_sets, st.integers(min_value=2, max_value=24),
           st.floats(min_value=0.5, max_value=0.99),
           st.floats(min_value=0.0, max_value=1.2),
           st.lists(st.integers(min_value=0, max_value=5),
                    min_size=0, max_size=8))
    def test_bit_identical_under_churn(self, raw, capacity, theta, delta,
                                       churn):
        """Presolved replanning equals the cold path after arbitrary churn.

        Each churn step replaces one job's estimate object (as a fresh DE
        report would) and bumps its elapsed/extra_demand; the incremental
        planner must still reproduce the stateless planner exactly.
        """
        jobs = build_jobs(raw)
        cold = RushPlanner(capacity, theta=theta, delta=delta,
                           tolerance=0.05, wcde_cache_size=0)
        warm = IncrementalPlanner(
            RushPlanner(capacity, theta=theta, delta=delta, tolerance=0.05),
            warm_start=False)

        assert plans_equal(cold.plan(jobs), warm.plan(jobs))

        for step, pick in enumerate(churn):
            idx = pick % len(jobs)
            old = jobs[idx]
            mutated = DemandEstimate(
                pmf=old.estimate.pmf,          # same content...
                bin_width=old.estimate.bin_width,
                container_runtime=old.estimate.container_runtime,
                sample_count=old.estimate.sample_count + 1)
            if step % 2:                        # ...or a shifted one
                probs = old.estimate.pmf.probs
                mutated = DemandEstimate(
                    pmf=Pmf(np.append(probs * 0.5, probs * 0.5)),
                    bin_width=old.estimate.bin_width,
                    container_runtime=old.estimate.container_runtime,
                    sample_count=old.estimate.sample_count + 1)
            jobs[idx] = PlannerJob(old.job_id, old.utility, mutated,
                                   elapsed=old.elapsed + step,
                                   extra_demand=old.extra_demand + 0.5)
            assert plans_equal(cold.plan(jobs), warm.plan(jobs))

    def test_presolve_counters_track_reuse(self):
        raw_jobs = [
            PlannerJob(f"j{i}", LinearUtility(200.0, 1.0),
                       DemandEstimate(Pmf.from_gaussian(40 + i, 6, tau_max=120),
                                      bin_width=1.0, container_runtime=5.0,
                                      sample_count=4))
            for i in range(4)]
        warm = IncrementalPlanner(RushPlanner(16), warm_start=False)
        warm.plan(raw_jobs)
        assert warm.presolve_misses == 4 and warm.presolve_hits == 0
        plan = warm.plan(raw_jobs)
        assert warm.presolve_hits == 4
        assert plan.stats.wcde_presolved == 4

    def test_presolve_reuse_feeds_cache_hit_rate(self):
        """ISSUE 6 satellite: presolve reuse no longer bypasses telemetry.

        A warm replan presolves every job, so the round performs zero
        cache lookups — historically the hit-rate read 0% despite four
        memoization wins.  The distinct ``presolve_reuses`` counter now
        folds them into ``hit_rate`` while ``hits + misses`` keeps
        counting actual lookups only.
        """
        raw_jobs = [
            PlannerJob(f"j{i}", LinearUtility(200.0, 1.0),
                       DemandEstimate(Pmf.from_gaussian(40 + i, 6, tau_max=120),
                                      bin_width=1.0, container_runtime=5.0,
                                      sample_count=4))
            for i in range(4)]
        planner = RushPlanner(16)
        warm = IncrementalPlanner(planner, warm_start=False)
        cache = planner.wcde_cache
        warm.plan(raw_jobs)
        assert cache.presolve_reuses == 0
        assert (cache.hits, cache.misses) == (0, 4)
        warm.plan(raw_jobs)
        assert cache.presolve_reuses == 4
        # No new lookups happened; the rate still reflects the reuse.
        assert (cache.hits, cache.misses) == (0, 4)
        assert cache.hit_rate == pytest.approx(4 / 8)
        cache.clear()
        assert cache.presolve_reuses == 0

    def test_pending_jobs_is_a_pure_query(self):
        raw_jobs = [
            PlannerJob(f"j{i}", LinearUtility(200.0, 1.0),
                       DemandEstimate(Pmf.from_gaussian(40 + i, 6, tau_max=120),
                                      bin_width=1.0, container_runtime=5.0,
                                      sample_count=4))
            for i in range(3)]
        warm = IncrementalPlanner(RushPlanner(16), warm_start=False)
        assert warm.pending_jobs(raw_jobs) == raw_jobs
        assert warm.presolve_hits == 0 and warm.presolve_misses == 0
        warm.plan(raw_jobs)
        assert warm.pending_jobs(raw_jobs) == []
        churned = PlannerJob(
            raw_jobs[0].job_id, raw_jobs[0].utility,
            DemandEstimate(Pmf.from_gaussian(55, 6, tau_max=120),
                           bin_width=1.0, container_runtime=5.0,
                           sample_count=5))
        assert warm.pending_jobs([churned] + raw_jobs[1:]) == [churned]

    def test_forget_drops_presolve_entry(self):
        job = PlannerJob("solo", LinearUtility(200.0, 1.0),
                         DemandEstimate(Pmf.from_gaussian(40, 6, tau_max=120),
                                        bin_width=1.0, container_runtime=5.0,
                                        sample_count=4))
        warm = IncrementalPlanner(RushPlanner(16), warm_start=False)
        warm.plan([job])
        warm.forget("solo")
        warm.plan([job])
        assert warm.presolve_hits == 0 and warm.presolve_misses == 2

    # The single-seed warm-start-equals-cold spot check that lived here
    # is superseded by the 20-seed sweep in test_determinism_sweep.py
    # (test_warm_replan_equals_cold_plan).


# ---------------------------------------------------------------------------
# RushScheduler dirty tracking
# ---------------------------------------------------------------------------

class _FakeSpec:
    def __init__(self, prior_runtime=8.0):
        self.prior_runtime = prior_runtime
        self.deadline = math.inf


class _FakeTask:
    def __init__(self, duration=6.0):
        self.duration = duration
        self.executed = duration / 2


class _FakeJob:
    def __init__(self, job_id, pending=10, budget=300.0):
        self.job_id = job_id
        self.spec = _FakeSpec()
        self.utility = LinearUtility(budget, 1.0)
        self.arrival = 0
        self.pending_count = pending
        self.running_count = 0
        self._ages = []

    def elapsed(self, now):
        return now - self.arrival

    def running_task_ages(self, now):
        return list(self._ages)


class _FakeSim:
    def __init__(self, capacity=8):
        self.capacity = capacity
        self.now = 0
        self.active_jobs = []


def _scheduler_with_jobs(n=3, **kwargs):
    sched = RushScheduler(**kwargs)
    sim = _FakeSim()
    sched.bind(sim)
    for i in range(n):
        job = _FakeJob(f"j{i}")
        sim.active_jobs.append(job)
        sched.on_job_arrival(job)
    return sched, sim


class TestRushSchedulerInvalidation:
    def test_quiet_replan_reuses_every_estimate(self):
        sched, sim = _scheduler_with_jobs(3)
        sched._current_plan()
        assert sched.estimates_refreshed == 3
        sim.now += 1                           # epoch moves, no DE events
        sched._current_plan()
        assert sched.estimates_refreshed == 3
        assert sched.estimates_reused == 3
        assert sched.profile()["presolve_hits"] == 3

    def test_same_epoch_returns_cached_plan(self):
        sched, sim = _scheduler_with_jobs(2)
        first = sched._current_plan()
        assert sched._current_plan() is first
        assert sched.plans_computed == 1

    def test_task_completion_dirties_exactly_one_job(self):
        sched, sim = _scheduler_with_jobs(3)
        sched._current_plan()
        sched.on_task_complete(sim.active_jobs[1], _FakeTask())
        sim.active_jobs[1].pending_count -= 1
        sim.now += 1
        sched._current_plan()
        assert sched.estimates_refreshed == 4      # 3 initial + the dirty one
        assert sched.estimates_reused == 2

    def test_task_failure_dirties_the_job(self):
        sched, sim = _scheduler_with_jobs(2)
        sched._current_plan()
        sched.on_task_failed(sim.active_jobs[0], _FakeTask())
        sim.now += 1
        sched._current_plan()
        assert sched.estimates_refreshed == 3
        assert sched.estimates_reused == 1

    def test_task_launch_dirties_the_job(self):
        sched, sim = _scheduler_with_jobs(2)
        sched._current_plan()
        job = sim.active_jobs[0]
        sched.on_task_launched(job, _FakeTask())
        job.pending_count -= 1
        job.running_count += 1
        job._ages.append(0)
        sim.now += 1
        sched._current_plan()
        assert sched.estimates_refreshed == 3
        assert sched.estimates_reused == 1

    def test_arrival_and_departure_manage_cache_entries(self):
        sched, sim = _scheduler_with_jobs(2)
        sched._current_plan()
        newcomer = _FakeJob("late")
        sim.active_jobs.append(newcomer)
        sched.on_job_arrival(newcomer)
        sim.now += 1
        sched._current_plan()
        assert sched.estimates_refreshed == 3      # only the newcomer
        assert sched.estimates_reused == 2

        done = sim.active_jobs.pop(0)
        sched.on_job_complete(done)
        assert done.job_id not in sched._estimates
        assert done.job_id not in sched._estimators
        sim.now += 1
        sched._current_plan()
        assert sched.estimates_refreshed == 3      # nobody recomputed
        assert sched.estimates_reused == 4

    def test_pending_drift_without_hook_still_refreshes(self):
        """The belt-and-braces pending-count guard catches missed events."""
        sched, sim = _scheduler_with_jobs(1)
        sched._current_plan()
        sim.active_jobs[0].pending_count -= 2      # no hook fired
        sim.now += 1
        sched._current_plan()
        assert sched.estimates_refreshed == 2

    def test_running_age_drift_replans_without_refreshing(self):
        """extra_demand drifts every slot but stays outside the memo."""
        sched, sim = _scheduler_with_jobs(1)
        job = sim.active_jobs[0]
        job.running_count = 1
        job._ages = [0]
        first = sched._current_plan()
        job._ages = [5]
        sim.now += 5
        second = sched._current_plan()
        assert sched.plans_computed == 2
        assert sched.estimates_reused == 1         # estimate memo held...
        jid = job.job_id
        assert second.jobs[jid].robust_demand < first.jobs[jid].robust_demand

    def test_non_incremental_mode_never_reuses(self):
        sched, sim = _scheduler_with_jobs(2, incremental=False)
        sched._current_plan()
        sim.now += 1
        sched._current_plan()
        assert sched.estimates_reused == 0
        assert sched.estimates_refreshed == 4
        assert sched.profile()["presolve_hits"] == 0

    def test_profile_reports_all_counters(self):
        sched, sim = _scheduler_with_jobs(2)
        sched._current_plan()
        profile = sched.profile()
        for key in ("plans_computed", "planner_seconds", "wcde_seconds",
                    "onion_seconds", "mapping_seconds", "estimates_refreshed",
                    "estimates_reused", "presolve_hits", "presolve_misses",
                    "wcde_cache_hits", "wcde_cache_misses",
                    "wcde_cache_hit_rate", "peels", "feasibility_checks"):
            assert key in profile
        assert profile["plans_computed"] == 1
        assert profile["peels"] >= 1
        assert profile["feasibility_checks"] >= 1
