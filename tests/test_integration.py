"""Integration tests: full simulations across the whole stack."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    EdfScheduler,
    FairScheduler,
    FifoScheduler,
    RrhScheduler,
    RushScheduler,
    run_simulation,
)
from repro.cluster.metrics import lexicographic_compare
from repro.workload import WorkloadConfig, WorkloadGenerator

#: A small but contended workload: jobs overlap enough that scheduling
#: decisions matter, yet runs finish in well under a second per policy.
CI_CONFIG = WorkloadConfig(
    n_jobs=14, capacity=8, mean_interarrival=120.0, budget_ratio=1.5,
    size_gb_range=(0.5, 2.0), time_scale=0.25)


def run_all(specs, capacity, max_slots=200_000):
    policies = {
        "FIFO": FifoScheduler(),
        "EDF": EdfScheduler(),
        "Fair": FairScheduler(),
        "RRH": RrhScheduler(),
        "RUSH": RushScheduler(),
    }
    return {name: run_simulation(specs, capacity, sched, max_slots=max_slots)
            for name, sched in policies.items()}


@pytest.fixture(scope="module")
def contended_results():
    specs = WorkloadGenerator(CI_CONFIG, seed=42).generate()
    return run_all(specs, CI_CONFIG.capacity)


class TestAllSchedulersComplete:
    def test_every_policy_finishes_every_job(self, contended_results):
        for name, result in contended_results.items():
            assert result.completed_count == CI_CONFIG.n_jobs, name

    def test_work_conservation_across_policies(self, contended_results):
        busies = {r.busy_container_slots for r in contended_results.values()}
        assert len(busies) == 1  # total ground-truth work is policy-independent

    def test_record_counts_and_fields(self, contended_results):
        for result in contended_results.values():
            assert len(result.records) == CI_CONFIG.n_jobs
            for record in result.records:
                assert record.runtime > 0
                assert not math.isnan(record.utility_value)


class TestRushQuality:
    def test_rush_is_lexicographically_best(self, contended_results):
        """The paper's headline: RUSH maximizes the sorted utility vector."""
        rush = contended_results["RUSH"].sorted_utilities()
        for name in ("FIFO", "EDF", "Fair"):
            other = contended_results[name].sorted_utilities()
            assert lexicographic_compare(rush, other) >= 0, name

    def test_rush_overhead_is_bounded(self, contended_results):
        result = contended_results["RUSH"]
        # the planner runs thousands of times yet stays fast (Figure 5)
        assert result.planner_seconds < 30.0


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        specs = WorkloadGenerator(CI_CONFIG, seed=7).generate()
        r1 = run_simulation(specs, CI_CONFIG.capacity, RushScheduler())
        specs2 = WorkloadGenerator(CI_CONFIG, seed=7).generate()
        r2 = run_simulation(specs2, CI_CONFIG.capacity, RushScheduler())
        assert [rec.runtime for rec in r1.records] == \
            [rec.runtime for rec in r2.records]


class TestBudgetRatioMonotonicity:
    def test_tighter_budgets_hurt_everyone(self):
        """Shrinking time budgets can only lower achieved utilities."""
        base = WorkloadConfig(
            n_jobs=10, capacity=8, mean_interarrival=100.0,
            budget_ratio=2.0, size_gb_range=(0.5, 2.0), time_scale=0.25)
        tight = WorkloadConfig(
            n_jobs=10, capacity=8, mean_interarrival=100.0,
            budget_ratio=1.0, size_gb_range=(0.5, 2.0), time_scale=0.25)
        loose_res = run_simulation(
            WorkloadGenerator(base, seed=3).generate(), 8, FifoScheduler())
        tight_res = run_simulation(
            WorkloadGenerator(tight, seed=3).generate(), 8, FifoScheduler())
        assert tight_res.total_utility() <= loose_res.total_utility() + 1e-9


class TestSimulationMetricsConsistency:
    def test_latency_matches_runtime_minus_budget(self, contended_results):
        for result in contended_results.values():
            for record in result.records:
                if not math.isnan(record.latency):
                    assert record.latency == pytest.approx(
                        record.runtime - record.budget)

    def test_utility_matches_utility_function(self):
        specs = WorkloadGenerator(CI_CONFIG, seed=9).generate()
        result = run_simulation(specs, CI_CONFIG.capacity, FifoScheduler())
        by_id = {s.job_id: s for s in specs}
        for record in result.records:
            expected = by_id[record.job_id].utility.value(record.runtime)
            assert record.utility_value == pytest.approx(expected)
