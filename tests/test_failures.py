"""Tests for task-failure injection and failure-aware estimation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import EstimationError, SimulationError
from repro.cluster import ClusterSimulator, JobSpec, SimJob, Task, TaskState, run_simulation
from repro.estimation import (
    FailureAwareEstimator,
    GaussianEstimator,
    MeanTimeEstimator,
)
from repro.schedulers import FifoScheduler, RushScheduler
from repro.utility import LinearUtility


def spec(job_id="j", durations=(3, 3), failure_prob=0.0, **kw):
    return JobSpec(job_id=job_id, arrival=kw.pop("arrival", 0),
                   task_durations=tuple(durations),
                   utility=LinearUtility(kw.pop("budget", 100.0), 1.0),
                   budget=100.0, failure_prob=failure_prob, **kw)


class TestTaskFailure:
    def test_fail_after_triggers(self):
        task = Task("t", "j", duration=5, fail_after=2)
        task.launch(0)
        assert not task.advance(0)
        assert task.advance(1)
        assert task.state is TaskState.FAILED
        assert task.executed == 2
        assert task.finish_time == 2

    def test_fail_after_validation(self):
        with pytest.raises(SimulationError):
            Task("t", "j", duration=5, fail_after=0)

    def test_retry_produces_fresh_attempt(self):
        task = Task("t", "j", duration=4, fail_after=1)
        task.launch(0)
        task.advance(0)
        retry = task.retry()
        assert retry.state is TaskState.PENDING
        assert retry.duration == 4
        assert retry.attempt == 1
        assert retry.task_id == "t#1"
        assert retry.fail_after is None

    def test_retry_of_healthy_task_rejected(self):
        task = Task("t", "j", duration=2)
        with pytest.raises(SimulationError):
            task.retry()

    def test_retry_chain_ids(self):
        task = Task("t", "j", duration=3, fail_after=1)
        task.launch(0)
        task.advance(0)
        second = task.retry()
        second.fail_after = 1
        second.launch(1)
        second.advance(1)
        third = second.retry()
        assert third.task_id == "t#2"
        assert third.attempt == 2


class TestSimJobFailureBookkeeping:
    def test_failed_attempt_requeues(self):
        job = SimJob(spec(durations=(4,), failure_prob=0.5))
        task = job.next_pending()
        task.fail_after = 1
        task.launch(0)
        job.note_launched()
        task.advance(0)
        job.note_failed(task)
        assert job.failed_count == 1
        assert job.pending_count == 1  # the retry
        assert not job.is_complete
        retry = job.next_pending()
        assert retry.attempt == 1

    def test_complete_despite_failures(self):
        job = SimJob(spec(durations=(2,)))
        task = job.next_pending()
        task.fail_after = 1
        task.launch(0)
        job.note_launched()
        task.advance(0)
        job.note_failed(task)
        retry = job.next_pending()
        retry.launch(1)
        job.note_launched()
        retry.advance(1), retry.advance(2)
        assert job.note_completed(retry)
        assert job.is_complete
        assert job.completion_time == 3


class TestSimulatorFailureInjection:
    def test_zero_probability_never_fails(self):
        result = run_simulation([spec(durations=(3,) * 10)], 2,
                                FifoScheduler(), seed=1)
        assert result.task_failures == 0

    def test_failures_occur_and_jobs_still_finish(self):
        result = run_simulation(
            [spec(durations=(3,) * 20, failure_prob=0.3)], 2,
            FifoScheduler(), seed=1)
        assert result.task_failures > 0
        assert result.completed_count == 1

    def test_failures_extend_runtime(self):
        clean = run_simulation([spec(durations=(4,) * 10)], 2,
                               FifoScheduler(), seed=3)
        flaky = run_simulation(
            [spec(durations=(4,) * 10, failure_prob=0.4)], 2,
            FifoScheduler(), seed=3)
        assert flaky.records[0].runtime > clean.records[0].runtime

    def test_failure_injection_deterministic_per_seed(self):
        specs = [spec(durations=(3,) * 15, failure_prob=0.3)]
        r1 = run_simulation(specs, 2, FifoScheduler(), seed=7)
        r2 = run_simulation(specs, 2, FifoScheduler(), seed=7)
        assert r1.task_failures == r2.task_failures
        assert r1.records[0].runtime == r2.records[0].runtime

    def test_rush_handles_failures(self):
        specs = [spec(job_id=f"j{i}", durations=(3,) * 6, failure_prob=0.2,
                      prior_runtime=3.0) for i in range(3)]
        result = run_simulation(specs, 3, RushScheduler(), seed=5)
        assert result.completed_count == 3

    def test_bad_failure_prob_rejected(self):
        with pytest.raises(Exception):
            spec(failure_prob=1.0)


class TestFailureAwareEstimator:
    def make(self, **kw):
        return FailureAwareEstimator(MeanTimeEstimator(prior_runtime=10.0), **kw)

    def test_validation(self):
        base = MeanTimeEstimator(prior_runtime=10.0)
        with pytest.raises(EstimationError):
            FailureAwareEstimator(base, prior_failures=-1)
        with pytest.raises(EstimationError):
            FailureAwareEstimator(base, prior_failures=20, prior_attempts=10)
        with pytest.raises(EstimationError):
            FailureAwareEstimator(base, max_failure_rate=1.5)
        with pytest.raises(EstimationError):
            self.make().observe_failure(-1.0)

    def test_prior_rate(self):
        de = self.make(prior_failures=0.5, prior_attempts=10.0)
        assert de.failure_rate() == pytest.approx(0.05)

    def test_rate_learns_from_failures(self):
        de = self.make()
        for _ in range(10):
            de.observe(10.0)
        low = de.failure_rate()
        for _ in range(10):
            de.observe_failure(4.0)
        assert de.failure_rate() > low

    def test_rate_clamped(self):
        de = self.make(max_failure_rate=0.8)
        for _ in range(500):
            de.observe_failure(5.0)
        assert de.failure_rate() == 0.8

    def test_multiplier_inflates_demand(self):
        clean = MeanTimeEstimator(prior_runtime=10.0).estimate(10)
        de = self.make()
        for _ in range(5):
            de.observe(10.0)
        for _ in range(5):
            de.observe_failure(5.0)
        flaky = de.estimate(10)
        assert flaky.mean_demand() > clean.mean_demand()
        # rate = (5 + .5)/(5 + 5 + 10) = 0.275; wasted fraction 0.5
        expected = 1.0 + 0.5 * 0.275 / 0.725
        assert flaky.mean_demand() / clean.mean_demand() == pytest.approx(
            expected, rel=1e-6)

    def test_wasted_fraction_defaults_to_half(self):
        de = self.make()
        assert de.mean_wasted_fraction(10.0) == 0.5

    def test_wasted_fraction_observed(self):
        de = self.make()
        de.observe_failure(2.0)
        de.observe_failure(4.0)
        assert de.mean_wasted_fraction(10.0) == pytest.approx(0.3)

    def test_completions_flow_to_base(self):
        base = GaussianEstimator(min_samples=2)
        de = FailureAwareEstimator(base)
        de.observe(10.0)
        de.observe(14.0)
        assert base.sample_count == 2
        est = de.estimate(5)
        assert est.container_runtime == pytest.approx(12.0)

    def test_zero_pending_passthrough(self):
        de = self.make()
        assert de.estimate(0).mean_demand() == 0.0


class TestEndToEndFailureRobustness:
    def test_failure_aware_rush_covers_flaky_demand(self):
        """A failure-aware DE keeps coverage under 20% task failures."""
        from repro import RushPlanner

        rng = np.random.default_rng(11)
        planner = RushPlanner(capacity=8, theta=0.9, delta=0.7)
        covered_naive = covered_aware = 0
        trials = 30
        for _ in range(trials):
            naive = GaussianEstimator(min_samples=2)
            aware = FailureAwareEstimator(GaussianEstimator(min_samples=2))
            # warm both with 30 completions; the aware one also sees failures
            runtimes = rng.normal(10, 2, size=30).clip(min=1.0)
            for r in runtimes:
                naive.observe(float(r))
                aware.observe(float(r))
            for _ in range(8):  # ~20% of attempts failed
                aware.observe_failure(float(rng.uniform(1, 9)))
            pending = 40
            # ground truth: each task may need retries (p = 0.2)
            actual = 0.0
            for _ in range(pending):
                while rng.random() < 0.2:
                    actual += float(rng.uniform(1, 9))  # wasted attempt
                actual += float(rng.normal(10, 2))
            eta_naive, _, _ = planner.robust_demand(naive.estimate(pending))
            eta_aware, _, _ = planner.robust_demand(aware.estimate(pending))
            covered_naive += eta_naive >= actual
            covered_aware += eta_aware >= actual
        assert covered_aware >= covered_naive
        assert covered_aware / trials >= 0.8
